//! The supervisor↔worker wire protocol: one flat JSON object per line,
//! encoded with the same hand-rolled field helpers the journal uses, so
//! a cell serialises identically on the wire and in the journal.
//!
//! Supervisor → worker lines are [`ToWorker`]; worker → supervisor lines
//! are [`FromWorker`]. Both sides skip lines they cannot parse (the same
//! forward-compatibility contract as the journal reader), so a partial
//! line from a killed peer never wedges the other side.

use std::fmt::Write as _;

use crate::cell::{
    cell_fields_json, cell_from_flat_json, json_str_field, json_u64_field, result_fields_json,
    result_from_flat_json, Cell, CellResult,
};

/// Version of the fleet wire protocol, negotiated by the TCP handshake.
/// Bump on any incompatible change to the lease/result line formats; an
/// agent refuses supervisors speaking a different schema rather than
/// guessing.
pub(crate) const FLEET_SCHEMA_VERSION: u64 = 1;

/// First line a supervisor sends on a fresh TCP connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Hello {
    /// The supervisor's [`FLEET_SCHEMA_VERSION`].
    pub schema: u64,
    /// Shared secret; both sides default to empty (loopback testing).
    pub token: String,
    /// Heartbeat cadence the supervisor expects, in milliseconds.
    pub heartbeat_ms: u64,
}

/// The agent's one-line answer to a [`Hello`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum HelloReply {
    /// Handshake accepted; the `ready` line follows on the same stream.
    Ok {
        /// The agent's schema version (must equal the supervisor's).
        schema: u64,
        /// The agent's OS process id (for diagnostics).
        pid: u32,
        /// Capability report: worker threads the agent will use per cell
        /// (0 = all cores). Recorded, not enforced.
        threads: u64,
    },
    /// Handshake refused; the agent closes the connection after this.
    Err {
        /// Sanitised refusal reason (see [`sanitize`]).
        error: String,
    },
}

impl Hello {
    /// Encodes as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"type\":\"hello\",\"schema\":{},\"token\":\"{}\",\"heartbeat_ms\":{}}}",
            self.schema,
            sanitize(&self.token),
            self.heartbeat_ms,
        )
    }

    /// Decodes a line; `None` for malformed, truncated, or wrong-type
    /// lines.
    pub fn from_jsonl(line: &str) -> Option<Hello> {
        let line = line.trim();
        if !line.ends_with('}') || json_str_field(line, "type")? != "hello" {
            return None;
        }
        Some(Hello {
            schema: json_u64_field(line, "schema")?,
            token: json_str_field(line, "token")?.to_string(),
            heartbeat_ms: json_u64_field(line, "heartbeat_ms")?,
        })
    }
}

impl HelloReply {
    /// Encodes as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            HelloReply::Ok {
                schema,
                pid,
                threads,
            } => format!(
                "{{\"type\":\"hello_ok\",\"schema\":{schema},\"pid\":{pid},\"threads\":{threads}}}"
            ),
            HelloReply::Err { error } => {
                format!(
                    "{{\"type\":\"hello_err\",\"error\":\"{}\"}}",
                    sanitize(error)
                )
            }
        }
    }

    /// Decodes a line; `None` for malformed, truncated, or wrong-type
    /// lines.
    pub fn from_jsonl(line: &str) -> Option<HelloReply> {
        let line = line.trim();
        if !line.ends_with('}') {
            return None;
        }
        match json_str_field(line, "type")? {
            "hello_ok" => Some(HelloReply::Ok {
                schema: json_u64_field(line, "schema")?,
                pid: u32::try_from(json_u64_field(line, "pid")?).ok()?,
                threads: json_u64_field(line, "threads")?,
            }),
            "hello_err" => Some(HelloReply::Err {
                error: json_str_field(line, "error")?.to_string(),
            }),
            _ => None,
        }
    }
}

/// One unit of leased work: the pending-order position `index` plus the
/// fully-resolved cell, tagged with a unique lease id and the attempt
/// number (0 on first issue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Lease {
    /// Unique per supervisor run; never reused, so a stale result from a
    /// superseded lease is distinguishable from the re-issue's result.
    pub id: u64,
    /// Position in the supervisor's pending order.
    pub index: usize,
    /// 0-based retry attempt.
    pub attempt: u32,
    /// The cell to execute.
    pub cell: Cell,
}

/// Supervisor → worker messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ToWorker {
    /// Execute this lease and reply with `Result` or `CellError`.
    Lease(Lease),
    /// Finish up and exit cleanly.
    Shutdown,
}

/// Worker → supervisor messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FromWorker {
    /// Sent once on startup.
    Ready {
        /// The worker's OS process id (for diagnostics).
        pid: u32,
    },
    /// Liveness beacon emitted periodically while a lease executes.
    Heartbeat {
        /// The lease being executed.
        id: u64,
    },
    /// A lease completed successfully.
    Result {
        /// The lease id this result answers.
        id: u64,
        /// Echo of the lease's pending-order position.
        index: usize,
        /// The executed cell's result.
        result: CellResult,
    },
    /// A lease failed validation or execution (non-retryable: the same
    /// cell fails the same way everywhere).
    CellError {
        /// The lease id this error answers.
        id: u64,
        /// Echo of the lease's pending-order position.
        index: usize,
        /// Sanitised error text (see [`sanitize`]).
        error: String,
    },
}

/// Strips characters that would break the flat-JSON line format: `"`
/// becomes `'`, `\` becomes `/`, and control characters become spaces.
/// Lossy by design — error text is for humans, and keeping the encoder
/// escape-free keeps the field extractors exact.
pub(crate) fn sanitize(text: &str) -> String {
    text.chars()
        .map(|c| match c {
            '"' => '\'',
            '\\' => '/',
            c if c.is_control() => ' ',
            c => c,
        })
        .collect()
}

impl ToWorker {
    /// Encodes as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            ToWorker::Lease(lease) => format!(
                "{{\"type\":\"lease\",\"id\":{},\"index\":{},\"attempt\":{},{}}}",
                lease.id,
                lease.index,
                lease.attempt,
                cell_fields_json(&lease.cell),
            ),
            ToWorker::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
        }
    }

    /// Decodes a line; `None` for malformed, truncated, or unknown-type
    /// lines.
    pub fn from_jsonl(line: &str) -> Option<ToWorker> {
        let line = line.trim();
        if !line.ends_with('}') {
            return None;
        }
        match json_str_field(line, "type")? {
            "lease" => Some(ToWorker::Lease(Lease {
                id: json_u64_field(line, "id")?,
                index: usize::try_from(json_u64_field(line, "index")?).ok()?,
                attempt: u32::try_from(json_u64_field(line, "attempt")?).ok()?,
                cell: cell_from_flat_json(line)?,
            })),
            "shutdown" => Some(ToWorker::Shutdown),
            _ => None,
        }
    }
}

impl FromWorker {
    /// Encodes as one JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        match self {
            FromWorker::Ready { pid } => format!("{{\"type\":\"ready\",\"pid\":{pid}}}"),
            FromWorker::Heartbeat { id } => format!("{{\"type\":\"heartbeat\",\"id\":{id}}}"),
            FromWorker::Result { id, index, result } => format!(
                "{{\"type\":\"result\",\"id\":{},\"index\":{},{}}}",
                id,
                index,
                result_fields_json(result),
            ),
            FromWorker::CellError { id, index, error } => {
                let mut s = String::new();
                let _ = write!(
                    s,
                    "{{\"type\":\"cell_error\",\"id\":{},\"index\":{},\"error\":\"{}\"}}",
                    id,
                    index,
                    sanitize(error),
                );
                s
            }
        }
    }

    /// Decodes a line; `None` for malformed, truncated, or unknown-type
    /// lines.
    pub fn from_jsonl(line: &str) -> Option<FromWorker> {
        let line = line.trim();
        if !line.ends_with('}') {
            return None;
        }
        match json_str_field(line, "type")? {
            "ready" => Some(FromWorker::Ready {
                pid: u32::try_from(json_u64_field(line, "pid")?).ok()?,
            }),
            "heartbeat" => Some(FromWorker::Heartbeat {
                id: json_u64_field(line, "id")?,
            }),
            "result" => Some(FromWorker::Result {
                id: json_u64_field(line, "id")?,
                index: usize::try_from(json_u64_field(line, "index")?).ok()?,
                result: result_from_flat_json(line)?,
            }),
            "cell_error" => Some(FromWorker::CellError {
                id: json_u64_field(line, "id")?,
                index: usize::try_from(json_u64_field(line, "index")?).ok()?,
                error: json_str_field(line, "error")?.to_string(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lease() -> Lease {
        Lease {
            id: 7,
            index: 3,
            attempt: 1,
            cell: Cell {
                seed: 42,
                runs: 3,
                ..Cell::new("synran", "balancer", 16)
            },
        }
    }

    #[test]
    fn to_worker_round_trips() {
        for msg in [ToWorker::Lease(sample_lease()), ToWorker::Shutdown] {
            let line = msg.to_jsonl();
            assert_eq!(ToWorker::from_jsonl(&line), Some(msg.clone()), "{line}");
        }
    }

    #[test]
    fn from_worker_round_trips() {
        let msgs = [
            FromWorker::Ready { pid: 1234 },
            FromWorker::Heartbeat { id: 9 },
            FromWorker::Result {
                id: 7,
                index: 3,
                result: CellResult {
                    rounds: vec![5, 7],
                    kills: vec![2, 0],
                    timeouts: 1,
                    violations: 0,
                },
            },
            FromWorker::CellError {
                id: 8,
                index: 4,
                error: "unknown protocol 'bogus'".to_string(),
            },
        ];
        for msg in msgs {
            let line = msg.to_jsonl();
            assert_eq!(FromWorker::from_jsonl(&line), Some(msg.clone()), "{line}");
        }
    }

    #[test]
    fn sanitize_strips_format_breakers() {
        assert_eq!(sanitize("a \"b\" \\c\nd"), "a 'b' /c d");
        let msg = FromWorker::CellError {
            id: 1,
            index: 0,
            error: "quote\" backslash\\ newline\n".to_string(),
        };
        let line = msg.to_jsonl();
        let decoded = FromWorker::from_jsonl(&line).expect("decodes after sanitising");
        match decoded {
            FromWorker::CellError { error, .. } => {
                assert_eq!(error, "quote' backslash/ newline ");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_skipped() {
        for line in [
            "",
            "{",
            "{\"type\":\"lease\",\"id\":1}",
            "not json}",
            "{\"type\":\"mystery\"}",
        ] {
            assert_eq!(ToWorker::from_jsonl(line), None, "{line:?}");
            assert_eq!(FromWorker::from_jsonl(line), None, "{line:?}");
        }
        // A truncated result line (killed worker mid-write).
        let full = FromWorker::Result {
            id: 1,
            index: 0,
            result: CellResult::default(),
        }
        .to_jsonl();
        assert_eq!(FromWorker::from_jsonl(&full[..full.len() - 2]), None);
    }

    #[test]
    fn handshake_round_trips() {
        let hello = Hello {
            schema: FLEET_SCHEMA_VERSION,
            token: "s3cret".to_string(),
            heartbeat_ms: 200,
        };
        assert_eq!(Hello::from_jsonl(&hello.to_jsonl()), Some(hello.clone()));
        let replies = [
            HelloReply::Ok {
                schema: FLEET_SCHEMA_VERSION,
                pid: 4321,
                threads: 2,
            },
            HelloReply::Err {
                error: "bad token".to_string(),
            },
        ];
        for reply in replies {
            let line = reply.to_jsonl();
            assert_eq!(HelloReply::from_jsonl(&line), Some(reply.clone()), "{line}");
        }
        // Hostile token text cannot break the line format.
        let spiky = Hello {
            schema: 1,
            token: "a\"b\\c\nd".to_string(),
            heartbeat_ms: 1,
        };
        let decoded = Hello::from_jsonl(&spiky.to_jsonl()).expect("decodes after sanitising");
        assert_eq!(decoded.token, "a'b/c d");
    }

    #[test]
    fn handshake_rejects_foreign_lines() {
        for line in ["", "{\"type\":\"ready\",\"pid\":1}", "{\"type\":\"hello\""] {
            assert_eq!(Hello::from_jsonl(line), None, "{line:?}");
            assert_eq!(HelloReply::from_jsonl(line), None, "{line:?}");
        }
    }

    #[test]
    fn lease_cell_encoding_matches_journal_encoding() {
        // The wire fragment must be the exact journal fragment, so the
        // supervisor can journal a worker's result without re-deriving
        // anything about the cell.
        let lease = sample_lease();
        let wire = ToWorker::Lease(lease.clone()).to_jsonl();
        let journal = crate::cell::to_jsonl(&lease.cell, &CellResult::default());
        let fragment = cell_fields_json(&lease.cell);
        assert!(wire.contains(&fragment));
        assert!(journal.contains(&fragment));
    }
}
