//! Hardened line framing for fleet transports.
//!
//! The pipe transport read worker output with a plain buffered
//! line-reader, which was fine when the only peer was a subprocess we
//! spawned ourselves. A socket peer is a different trust story: a
//! confused or hostile sender can stream an unbounded line, non-UTF-8
//! bytes, or arbitrary garbage, and none of that may panic the
//! supervisor or grow a buffer without limit. `FrameReader` mirrors the
//! forgiving classification of `TelemetryStream`: every chunk of input
//! becomes a [`Frame`] — a complete line, an oversized line whose
//! payload was discarded unread past the cap, or a malformed (non-UTF-8)
//! line — and the caller decides how many bad frames a peer is allowed
//! before it is retired through the structured protocol-error path.

use std::io::Read;

/// Hard per-line byte cap. A legitimate protocol line is a cell result —
/// well under a kilobyte — so a mebibyte is three orders of magnitude of
/// headroom while still bounding a hostile sender to O(1) memory.
pub(crate) const MAX_FRAME_BYTES: usize = 1 << 20;

/// How many consecutive unusable frames (garbage, oversized, malformed)
/// a peer may send before the supervisor retires it. Unknown-but-valid
/// JSON lines are forward compatibility, not garbage, and reset nothing.
pub(crate) const GARBAGE_FRAME_LIMIT: u32 = 8;

/// One framed unit of peer input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Frame {
    /// A complete UTF-8 line within the byte cap, newline stripped.
    Line(String),
    /// A line that exceeded the cap; `bytes` counts what was discarded.
    Oversized { bytes: usize },
    /// A complete line that was not valid UTF-8.
    Malformed { bytes: usize },
}

/// Bounded, panic-free line reader over any byte stream.
pub(crate) struct FrameReader<R> {
    inner: R,
    chunk: Box<[u8]>,
    /// Consumed offset and fill level within `chunk`.
    pos: usize,
    filled: usize,
    /// The current partial line, never longer than `cap`.
    line: Vec<u8>,
    /// When an oversized line trips the cap we stop buffering and count
    /// discarded bytes until the next newline.
    discarding: bool,
    discarded: usize,
    bytes_read: u64,
    cap: usize,
}

impl<R: Read> FrameReader<R> {
    pub(crate) fn new(inner: R) -> Self {
        Self::with_cap(inner, MAX_FRAME_BYTES)
    }

    pub(crate) fn with_cap(inner: R, cap: usize) -> Self {
        FrameReader {
            inner,
            chunk: vec![0u8; 8 * 1024].into_boxed_slice(),
            pos: 0,
            filled: 0,
            line: Vec::new(),
            discarding: false,
            discarded: 0,
            bytes_read: 0,
            cap: cap.max(1),
        }
    }

    /// Raw bytes consumed from the underlying stream so far.
    #[cfg(test)]
    pub(crate) fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Next frame, or `Ok(None)` at end of stream. A trailing partial
    /// line (EOF without newline) is surfaced as a final frame; the
    /// protocol parser already rejects truncated JSON, so a half-written
    /// message classifies as unusable downstream rather than vanishing.
    pub(crate) fn next_frame(&mut self) -> std::io::Result<Option<Frame>> {
        loop {
            while self.pos < self.filled {
                let byte = self.chunk[self.pos];
                self.pos += 1;
                if byte == b'\n' {
                    return Ok(Some(self.finish_line()));
                }
                if self.discarding {
                    self.discarded += 1;
                    continue;
                }
                self.line.push(byte);
                if self.line.len() > self.cap {
                    self.discarding = true;
                    self.discarded = self.line.len();
                    self.line.clear();
                    self.line.shrink_to_fit();
                }
            }
            self.pos = 0;
            self.filled = 0;
            match self.inner.read(&mut self.chunk) {
                Ok(0) => {
                    if self.discarding || !self.line.is_empty() {
                        return Ok(Some(self.finish_line()));
                    }
                    return Ok(None);
                }
                Ok(n) => {
                    self.filled = n;
                    self.bytes_read += n as u64;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn finish_line(&mut self) -> Frame {
        if self.discarding {
            let bytes = self.discarded;
            self.discarding = false;
            self.discarded = 0;
            return Frame::Oversized { bytes };
        }
        let raw = std::mem::take(&mut self.line);
        match String::from_utf8(raw) {
            Ok(text) => Frame::Line(text),
            Err(err) => Frame::Malformed {
                bytes: err.into_bytes().len(),
            },
        }
    }
}

/// Forgiving classification of a decoded line that failed to parse as a
/// protocol message. A `{...}`-shaped line is an unknown-but-well-formed
/// message from a newer peer — skipped for forward compatibility, like
/// `TelemetryStream`'s unknown events. Anything else is garbage and
/// counts toward [`GARBAGE_FRAME_LIMIT`].
pub(crate) fn looks_like_json(line: &str) -> bool {
    let trimmed = line.trim();
    trimmed.starts_with('{') && trimmed.ends_with('}')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(input: &[u8], cap: usize) -> Vec<Frame> {
        let mut reader = FrameReader::with_cap(input, cap);
        let mut out = Vec::new();
        while let Some(frame) = reader.next_frame().unwrap() {
            out.push(frame);
        }
        out
    }

    #[test]
    fn plain_lines_round_trip() {
        let got = frames(b"{\"type\":\"ready\",\"pid\":1}\nsecond\n", MAX_FRAME_BYTES);
        assert_eq!(
            got,
            vec![
                Frame::Line("{\"type\":\"ready\",\"pid\":1}".into()),
                Frame::Line("second".into()),
            ]
        );
    }

    #[test]
    fn truncated_final_line_is_surfaced_not_dropped() {
        // A peer dying mid-append leaves a line without a newline; the
        // frame must still come out so the parser can reject it.
        let got = frames(
            b"{\"type\":\"result\",\"id\":4\n{\"type\":\"hea",
            MAX_FRAME_BYTES,
        );
        assert_eq!(
            got,
            vec![
                Frame::Line("{\"type\":\"result\",\"id\":4".into()),
                Frame::Line("{\"type\":\"hea".into()),
            ]
        );
    }

    #[test]
    fn oversized_line_is_discarded_with_bounded_memory() {
        let mut input = vec![b'x'; 100];
        input.push(b'\n');
        input.extend_from_slice(b"ok\n");
        let got = frames(&input, 16);
        assert_eq!(
            got,
            vec![Frame::Oversized { bytes: 100 }, Frame::Line("ok".into())]
        );
    }

    #[test]
    fn oversized_line_at_eof_without_newline_still_reports() {
        let input = vec![b'y'; 64];
        let got = frames(&input, 16);
        assert_eq!(got, vec![Frame::Oversized { bytes: 64 }]);
    }

    #[test]
    fn exactly_cap_sized_line_passes() {
        let mut input = vec![b'z'; 16];
        input.push(b'\n');
        let got = frames(&input, 16);
        assert_eq!(got, vec![Frame::Line("z".repeat(16))]);
    }

    #[test]
    fn non_utf8_line_classifies_as_malformed() {
        let got = frames(b"\xff\xfe\xfd\nfine\n", MAX_FRAME_BYTES);
        assert_eq!(
            got,
            vec![Frame::Malformed { bytes: 3 }, Frame::Line("fine".into())]
        );
    }

    #[test]
    fn garbage_between_valid_lines_keeps_the_stream_alive() {
        let got = frames(b"first\n\x00\x01binary\nlast\n", MAX_FRAME_BYTES);
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], Frame::Line("first".into()));
        assert_eq!(got[2], Frame::Line("last".into()));
    }

    #[test]
    fn crosses_chunk_boundaries() {
        // A line far longer than the internal 8 KiB chunk, under the cap.
        let long = "a".repeat(40_000);
        let input = format!("{long}\ntail\n");
        let got = frames(input.as_bytes(), MAX_FRAME_BYTES);
        assert_eq!(got, vec![Frame::Line(long), Frame::Line("tail".into())]);
    }

    #[test]
    fn bytes_read_counts_raw_stream_bytes() {
        let input = b"abc\ndef\n";
        let mut reader = FrameReader::with_cap(&input[..], MAX_FRAME_BYTES);
        while reader.next_frame().unwrap().is_some() {}
        assert_eq!(reader.bytes_read(), input.len() as u64);
    }

    #[test]
    fn json_shape_classification() {
        assert!(looks_like_json("{\"type\":\"future_msg\",\"x\":1}"));
        assert!(looks_like_json("  {\"k\":2}  "));
        assert!(!looks_like_json("not json at all"));
        assert!(!looks_like_json("{\"half\":"));
        assert!(!looks_like_json(""));
    }
}
