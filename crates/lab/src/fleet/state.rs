//! The fleet sidecar: a small append-only JSONL file next to the
//! campaign journal (`<campaign>.fleet.jsonl`) recording lease traffic,
//! worker restarts, and structured failures, so `campaign status` can
//! surface in-flight fleet state while a supervisor runs — and after a
//! crash. Plain (in-process) runs never create it; a clean zero-failure
//! fleet run removes it on completion.
//!
//! Like every reader in this crate, the scanner tolerates truncation and
//! unknown lines — a supervisor killed mid-write must not wedge
//! `campaign status`.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::cell::json_u64_field;
use crate::LabError;

/// Where a fleet run's sidecar lives: `<name>.fleet.jsonl` next to the
/// journal (`<name>.journal.jsonl`), or `<journal stem>.fleet.jsonl` for
/// unconventional journal names.
#[must_use]
pub fn fleet_sidecar_path(journal: &Path) -> PathBuf {
    let name = journal.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let base = name.strip_suffix(".journal.jsonl").unwrap_or_else(|| {
        Path::new(name)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("campaign")
    });
    journal.with_file_name(format!("{base}.fleet.jsonl"))
}

/// In-flight fleet state distilled from a sidecar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetStatus {
    /// Worker slot count the supervisor started with.
    pub procs: usize,
    /// Distinct pending cells leased but neither resolved nor failed.
    pub outstanding: usize,
    /// Workers that died or were killed and replaced.
    pub restarts: u64,
    /// Cells recorded as structured failures.
    pub failed: usize,
    /// Per-slot transport identity, in slot order.
    pub workers: Vec<FleetWorkerStatus>,
}

/// Transport identity of one worker slot, distilled from the sidecar's
/// `worker` (connect) events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetWorkerStatus {
    /// The slot's position in `--workers` order.
    pub slot: usize,
    /// `"pipe"` or `"tcp"`.
    pub transport: String,
    /// Latest peer identity: `pid=N` for pipes, the socket address for
    /// TCP.
    pub peer: String,
    /// Successful connects; anything past the first is a rejoin after a
    /// crash, disconnect, or retirement.
    pub connects: u64,
}

impl FleetWorkerStatus {
    /// Connects beyond the first — the slot's rejoin count.
    #[must_use]
    pub fn reconnects(&self) -> u64 {
        self.connects.saturating_sub(1)
    }
}

/// Appends fleet lifecycle events to the sidecar, one flushed line each,
/// mirroring the journal's crash-tolerance discipline.
#[derive(Debug)]
pub(crate) struct SidecarWriter {
    path: PathBuf,
    out: BufWriter<File>,
}

impl SidecarWriter {
    /// Creates (truncating any stale predecessor) and writes the start
    /// event.
    pub fn create(journal: &Path, procs: usize) -> Result<SidecarWriter, LabError> {
        let path = fleet_sidecar_path(journal);
        let out = BufWriter::new(File::create(&path)?);
        let mut writer = SidecarWriter { path, out };
        writer.event(&format!(
            "{{\"type\":\"fleet\",\"event\":\"start\",\"procs\":{procs}}}"
        ))?;
        Ok(writer)
    }

    fn event(&mut self, line: &str) -> Result<(), LabError> {
        writeln!(self.out, "{line}")?;
        self.out.flush()?;
        Ok(())
    }

    /// A lease was issued (or re-issued) for pending index `index`.
    pub fn lease(&mut self, index: usize, attempt: u32) -> Result<(), LabError> {
        self.event(&format!(
            "{{\"type\":\"fleet\",\"event\":\"lease\",\"index\":{index},\"attempt\":{attempt}}}"
        ))
    }

    /// Pending index `index` resolved with a fresh result.
    pub fn done(&mut self, index: usize) -> Result<(), LabError> {
        self.event(&format!(
            "{{\"type\":\"fleet\",\"event\":\"done\",\"index\":{index}}}"
        ))
    }

    /// Pending index `index` was recorded as a structured failure.
    pub fn failed(&mut self, index: usize) -> Result<(), LabError> {
        self.event(&format!(
            "{{\"type\":\"fleet\",\"event\":\"failed\",\"index\":{index}}}"
        ))
    }

    /// A worker process died (or was killed) and its slot was recycled.
    pub fn restart(&mut self) -> Result<(), LabError> {
        self.event("{\"type\":\"fleet\",\"event\":\"restart\"}")
    }

    /// A worker came up on `slot` over the given transport. Repeated
    /// events for one slot are reconnects.
    pub fn worker(&mut self, slot: usize, transport: &str, peer: &str) -> Result<(), LabError> {
        self.event(&format!(
            "{{\"type\":\"fleet\",\"event\":\"worker\",\"slot\":{slot},\"transport\":\"{}\",\"peer\":\"{}\"}}",
            crate::fleet::proto::sanitize(transport),
            crate::fleet::proto::sanitize(peer),
        ))
    }

    /// Removes the sidecar — the clean-completion path.
    pub fn remove(self) -> Result<(), LabError> {
        drop(self.out);
        std::fs::remove_file(&self.path)?;
        Ok(())
    }
}

/// Scans a sidecar into a [`FleetStatus`]; `Ok(None)` when the file does
/// not exist (a plain run, or a fleet run that completed cleanly).
/// Malformed or truncated lines are skipped.
///
/// # Errors
///
/// Returns an I/O error if the file exists but cannot be read.
pub fn scan_fleet_sidecar(path: &Path) -> Result<Option<FleetStatus>, LabError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut procs = 0usize;
    let mut restarts = 0u64;
    let mut leased: BTreeSet<u64> = BTreeSet::new();
    let mut done: BTreeSet<u64> = BTreeSet::new();
    let mut failed: BTreeSet<u64> = BTreeSet::new();
    // slot → (latest transport, latest peer, connect count).
    let mut workers: std::collections::BTreeMap<u64, (String, String, u64)> =
        std::collections::BTreeMap::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        let line = line.trim();
        if !line.ends_with('}') {
            continue; // Truncated tail of a killed supervisor.
        }
        let Some(event) = crate::cell::json_str_field(line, "event") else {
            continue;
        };
        match event {
            "start" => {
                if let Some(p) = json_u64_field(line, "procs") {
                    procs = usize::try_from(p).unwrap_or(0);
                }
            }
            "lease" => {
                if let Some(i) = json_u64_field(line, "index") {
                    leased.insert(i);
                }
            }
            "done" => {
                if let Some(i) = json_u64_field(line, "index") {
                    done.insert(i);
                }
            }
            "failed" => {
                if let Some(i) = json_u64_field(line, "index") {
                    failed.insert(i);
                }
            }
            "restart" => restarts += 1,
            "worker" => {
                let (Some(slot), Some(transport), Some(peer)) = (
                    json_u64_field(line, "slot"),
                    crate::cell::json_str_field(line, "transport"),
                    crate::cell::json_str_field(line, "peer"),
                ) else {
                    continue;
                };
                let entry = workers
                    .entry(slot)
                    .or_insert_with(|| (String::new(), String::new(), 0));
                entry.0 = transport.to_string();
                entry.1 = peer.to_string();
                entry.2 += 1;
            }
            _ => {}
        }
    }
    let outstanding = leased
        .iter()
        .filter(|i| !done.contains(i) && !failed.contains(i))
        .count();
    Ok(Some(FleetStatus {
        procs,
        outstanding,
        restarts,
        failed: failed.len(),
        workers: workers
            .into_iter()
            .map(|(slot, (transport, peer, connects))| FleetWorkerStatus {
                slot: usize::try_from(slot).unwrap_or(usize::MAX),
                transport,
                peer,
                connects,
            })
            .collect(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synran-fleet-state-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sidecar_path_sits_next_to_the_journal() {
        assert_eq!(
            fleet_sidecar_path(Path::new("results/e3.journal.jsonl")),
            PathBuf::from("results/e3.fleet.jsonl")
        );
        assert_eq!(
            fleet_sidecar_path(Path::new("odd-name.jsonl")),
            PathBuf::from("odd-name.fleet.jsonl")
        );
    }

    #[test]
    fn writer_and_scanner_round_trip_in_flight_state() {
        let journal = tmpdir("roundtrip").join("demo.journal.jsonl");
        let mut w = SidecarWriter::create(&journal, 4).unwrap();
        w.worker(0, "pipe", "pid=41").unwrap();
        w.worker(1, "tcp", "127.0.0.1:7070").unwrap();
        w.lease(0, 0).unwrap();
        w.lease(1, 0).unwrap();
        w.done(0).unwrap();
        w.restart().unwrap();
        w.worker(1, "tcp", "127.0.0.1:7071").unwrap(); // rejoin
        w.lease(1, 1).unwrap(); // re-issue after the restart
        w.lease(2, 0).unwrap();
        w.failed(2).unwrap();

        let status = scan_fleet_sidecar(&fleet_sidecar_path(&journal))
            .unwrap()
            .expect("sidecar present");
        assert_eq!(
            status,
            FleetStatus {
                procs: 4,
                outstanding: 1, // index 1: leased twice, never resolved
                restarts: 1,
                failed: 1,
                workers: vec![
                    FleetWorkerStatus {
                        slot: 0,
                        transport: "pipe".to_string(),
                        peer: "pid=41".to_string(),
                        connects: 1,
                    },
                    FleetWorkerStatus {
                        slot: 1,
                        transport: "tcp".to_string(),
                        peer: "127.0.0.1:7071".to_string(), // latest wins
                        connects: 2,
                    },
                ],
            }
        );
        assert_eq!(status.workers[0].reconnects(), 0);
        assert_eq!(status.workers[1].reconnects(), 1);

        w.remove().unwrap();
        assert_eq!(
            scan_fleet_sidecar(&fleet_sidecar_path(&journal)).unwrap(),
            None
        );
    }

    #[test]
    fn scanner_tolerates_truncation_and_noise() {
        let dir = tmpdir("noise");
        let path = dir.join("x.fleet.jsonl");
        std::fs::write(
            &path,
            "{\"type\":\"fleet\",\"event\":\"start\",\"procs\":2}\n\
             garbage line\n\
             {\"type\":\"fleet\",\"event\":\"lease\",\"index\":0,\"attempt\":0}\n\
             {\"type\":\"fleet\",\"event\":\"lease\",\"ind",
        )
        .unwrap();
        let status = scan_fleet_sidecar(&path).unwrap().unwrap();
        assert_eq!(status.procs, 2);
        assert_eq!(status.outstanding, 1);
    }

    #[test]
    fn missing_sidecar_is_none() {
        assert_eq!(
            scan_fleet_sidecar(Path::new("/nonexistent/x.fleet.jsonl")).unwrap(),
            None
        );
    }
}
