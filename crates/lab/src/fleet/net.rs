//! Fleet transports: how the supervisor reaches a worker.
//!
//! PR 8's supervisor talked to worker *subprocesses* through stdin/stdout
//! pipes it owned. This module decouples the supervisor from that one
//! shape behind [`Transport`] — framed JSONL write plus a detachable read
//! half — with two implementations:
//!
//! - [`PipeTransport`]: the original child-process pipes. `close()` kills
//!   and reaps the subprocess; the peer identity is its pid.
//! - [`TcpTransport`]: a socket to a long-lived `synran campaign agent`.
//!   Connecting runs a versioned, token-authenticated handshake (see
//!   [`handshake_accept`] for the agent half). `close()` shuts down only
//!   the *write* half: the agent sees EOF and returns to its accept loop,
//!   while any in-flight result still drains through the supervisor's
//!   reader thread into the stale-result discard instead of vanishing.
//!
//! Worker slots are declared with [`SlotSpec`] (`--workers
//! addr1,addr2[,local:N]`), so one fleet freely mixes remote agents with
//! local subprocesses.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::time::Duration;

use crate::fleet::proto::{Hello, HelloReply, FLEET_SCHEMA_VERSION};

/// Upper bound on a handshake line. A hello/reply is tens of bytes; a
/// peer that streams more before its first newline is not speaking the
/// protocol.
const MAX_HANDSHAKE_BYTES: usize = 4096;

/// One worker slot in `--workers` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotSpec {
    /// A worker subprocess over stdin/stdout pipes.
    Local,
    /// A long-lived `campaign agent` at this `host:port` address.
    Tcp(String),
}

/// Parses a `--workers` list: comma-separated `host:port` addresses,
/// `local` (one subprocess slot), or `local:N` (N subprocess slots).
pub fn parse_workers(spec: &str) -> Result<Vec<SlotSpec>, String> {
    let mut slots = Vec::new();
    for item in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        if item == "local" {
            slots.push(SlotSpec::Local);
        } else if let Some(count) = item.strip_prefix("local:") {
            let count: usize = count
                .parse()
                .map_err(|_| format!("--workers: bad local slot count in {item:?}"))?;
            if count == 0 {
                return Err(format!("--workers: {item:?} declares zero slots"));
            }
            for _ in 0..count {
                slots.push(SlotSpec::Local);
            }
        } else if item
            .rsplit_once(':')
            .is_some_and(|(host, port)| !host.is_empty() && port.parse::<u16>().is_ok())
        {
            slots.push(SlotSpec::Tcp(item.to_string()));
        } else {
            return Err(format!(
                "--workers: {item:?} is not host:port, local, or local:N"
            ));
        }
    }
    if slots.is_empty() {
        return Err("--workers: no worker slots given".to_string());
    }
    Ok(slots)
}

/// A framed JSONL channel to one worker, however it is reached.
pub(crate) trait Transport: Send {
    /// Writes one protocol line (newline appended) and flushes.
    fn send(&mut self, line: &str) -> std::io::Result<()>;
    /// Detaches the read half for the supervisor's reader thread. Yields
    /// `Some` exactly once.
    fn take_reader(&mut self) -> Option<Box<dyn Read + Send>>;
    /// `"pipe"` or `"tcp"` — the sidecar's transport tag.
    fn kind(&self) -> &'static str;
    /// Peer identity: `pid=N` for pipes, the socket address for TCP.
    fn peer(&self) -> String;
    /// Tears the channel down. Pipes kill and reap the subprocess; TCP
    /// shuts down the write half only so in-flight peer output drains.
    fn close(&mut self);
}

/// The original child-process transport.
pub(crate) struct PipeTransport {
    child: Child,
    stdin: Option<ChildStdin>,
    reader: Option<Box<dyn Read + Send>>,
}

impl PipeTransport {
    /// Spawns `argv` with piped stdio and the fleet heartbeat cadence in
    /// its environment.
    pub fn spawn(argv: &[String], heartbeat: Duration) -> Result<PipeTransport, String> {
        let mut child = Command::new(&argv[0])
            .args(&argv[1..])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .env(
                "SYNRAN_FLEET_HEARTBEAT_MS",
                heartbeat.as_millis().to_string(),
            )
            .spawn()
            .map_err(|e| format!("spawn {:?} failed: {e}", argv[0]))?;
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        Ok(PipeTransport {
            child,
            stdin: Some(stdin),
            reader: Some(Box::new(stdout)),
        })
    }
}

impl Transport for PipeTransport {
    fn send(&mut self, line: &str) -> std::io::Result<()> {
        let Some(stdin) = self.stdin.as_mut() else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe transport closed",
            ));
        };
        writeln!(stdin, "{line}")?;
        stdin.flush()
    }

    fn take_reader(&mut self) -> Option<Box<dyn Read + Send>> {
        self.reader.take()
    }

    fn kind(&self) -> &'static str {
        "pipe"
    }

    fn peer(&self) -> String {
        format!("pid={}", self.child.id())
    }

    fn close(&mut self) {
        self.stdin = None;
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for PipeTransport {
    fn drop(&mut self) {
        self.close();
    }
}

/// A socket to a remote `campaign agent`.
pub(crate) struct TcpTransport {
    stream: TcpStream,
    peer: String,
    reader: Option<Box<dyn Read + Send>>,
    closed: bool,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.peer)
            .field("closed", &self.closed)
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Connects to `addr` and runs the supervisor half of the handshake:
    /// send `hello` (schema, token, heartbeat cadence), require a
    /// matching `hello_ok` within `timeout`. Any refusal, mismatch, or
    /// silence is a connect error — the caller retries with backoff like
    /// any other spawn failure.
    pub fn connect(
        addr: &str,
        token: &str,
        heartbeat: Duration,
        timeout: Duration,
    ) -> Result<TcpTransport, String> {
        let sockaddr = resolve(addr)?;
        let stream = TcpStream::connect_timeout(&sockaddr, timeout)
            .map_err(|e| format!("connect {addr}: {e}"))?;
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(timeout));
        let hello = Hello {
            schema: FLEET_SCHEMA_VERSION,
            token: token.to_string(),
            heartbeat_ms: heartbeat.as_millis() as u64,
        };
        let mut half = &stream;
        writeln!(half, "{}", hello.to_jsonl()).map_err(|e| format!("hello to {addr}: {e}"))?;
        let reply =
            read_handshake_line(&mut half).map_err(|e| format!("handshake with {addr}: {e}"))?;
        match HelloReply::from_jsonl(&reply) {
            Some(HelloReply::Ok { schema, .. }) if schema == FLEET_SCHEMA_VERSION => {}
            Some(HelloReply::Ok { schema, .. }) => {
                return Err(format!(
                    "agent {addr} speaks schema {schema}, supervisor speaks {FLEET_SCHEMA_VERSION}"
                ));
            }
            Some(HelloReply::Err { error }) => {
                return Err(format!("agent {addr} refused handshake: {error}"));
            }
            None => return Err(format!("agent {addr} sent a malformed handshake reply")),
        }
        let _ = stream.set_read_timeout(None);
        let reader = stream
            .try_clone()
            .map_err(|e| format!("clone socket to {addr}: {e}"))?;
        let peer = stream
            .peer_addr()
            .map_or_else(|_| addr.to_string(), |a| a.to_string());
        Ok(TcpTransport {
            stream,
            peer,
            reader: Some(Box::new(reader)),
            closed: false,
        })
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, line: &str) -> std::io::Result<()> {
        if self.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "tcp transport closed",
            ));
        }
        writeln!(self.stream, "{line}")?;
        self.stream.flush()
    }

    fn take_reader(&mut self) -> Option<Box<dyn Read + Send>> {
        self.reader.take()
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            // Write half only: the read half keeps draining so a late
            // (stale) result reaches the book's discard path, and the
            // agent sees a clean EOF back to its accept loop.
            let _ = self.stream.shutdown(Shutdown::Write);
        }
    }
}

/// Runs the agent half of the handshake on a fresh connection: read the
/// supervisor's `hello` under a short deadline, check schema and token,
/// answer `hello_ok` (with this agent's pid and thread capability) or
/// `hello_err`. Returns the heartbeat cadence the supervisor asked for.
pub(crate) fn handshake_accept(
    stream: &TcpStream,
    token: &str,
    threads: usize,
) -> Result<Duration, String> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut half = stream;
    let line = read_handshake_line(&mut half)?;
    let refuse = |stream: &TcpStream, why: &str| -> Result<Duration, String> {
        let reply = HelloReply::Err {
            error: why.to_string(),
        };
        let mut half = stream;
        let _ = writeln!(half, "{}", reply.to_jsonl());
        Err(why.to_string())
    };
    let Some(hello) = Hello::from_jsonl(&line) else {
        return refuse(stream, "malformed hello");
    };
    if hello.schema != FLEET_SCHEMA_VERSION {
        return refuse(
            stream,
            &format!(
                "unsupported schema {} (agent speaks {FLEET_SCHEMA_VERSION})",
                hello.schema
            ),
        );
    }
    if hello.token != token {
        return refuse(stream, "bad token");
    }
    let reply = HelloReply::Ok {
        schema: FLEET_SCHEMA_VERSION,
        pid: std::process::id(),
        threads: threads as u64,
    };
    writeln!(half, "{}", reply.to_jsonl()).map_err(|e| format!("hello_ok write: {e}"))?;
    let _ = stream.set_read_timeout(None);
    Ok(Duration::from_millis(hello.heartbeat_ms.max(1)))
}

/// Reads one newline-terminated handshake line, byte by byte (the line is
/// tiny and this avoids buffering past it into the protocol stream).
fn read_handshake_line(reader: &mut impl Read) -> Result<String, String> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => return Err("peer closed during handshake".to_string()),
            Ok(_) if byte[0] == b'\n' => break,
            Ok(_) => {
                line.push(byte[0]);
                if line.len() > MAX_HANDSHAKE_BYTES {
                    return Err("handshake line too long".to_string());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err("handshake timed out".to_string());
            }
            Err(e) => return Err(format!("handshake read: {e}")),
        }
    }
    String::from_utf8(line).map_err(|_| "handshake line not UTF-8".to_string())
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("resolve {addr}: no addresses"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parse_workers_mixes_remote_and_local() {
        assert_eq!(
            parse_workers("10.0.0.1:7000, 10.0.0.2:7000 ,local:2,local"),
            Ok(vec![
                SlotSpec::Tcp("10.0.0.1:7000".to_string()),
                SlotSpec::Tcp("10.0.0.2:7000".to_string()),
                SlotSpec::Local,
                SlotSpec::Local,
                SlotSpec::Local,
            ])
        );
    }

    #[test]
    fn parse_workers_rejects_nonsense() {
        for bad in ["", ",", "host", "host:notaport", "local:0", "local:x"] {
            assert!(parse_workers(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    /// One accept on an ephemeral listener, running the agent handshake
    /// with the given expected token.
    fn agent_once(token: &'static str) -> (String, std::thread::JoinHandle<Result<(), String>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().map_err(|e| e.to_string())?;
            handshake_accept(&stream, token, 2).map(|_| ())
        });
        (addr, handle)
    }

    #[test]
    fn handshake_accepts_matching_token() {
        let (addr, agent) = agent_once("secret");
        let mut transport = TcpTransport::connect(
            &addr,
            "secret",
            Duration::from_millis(200),
            Duration::from_secs(5),
        )
        .expect("handshake succeeds");
        agent.join().unwrap().expect("agent side succeeds");
        assert_eq!(transport.kind(), "tcp");
        assert!(
            transport.peer().starts_with("127.0.0.1:"),
            "{}",
            transport.peer()
        );
        assert!(transport.take_reader().is_some());
        assert!(transport.take_reader().is_none(), "reader detaches once");
    }

    #[test]
    fn handshake_refuses_bad_token_with_a_reason() {
        let (addr, agent) = agent_once("secret");
        let err = TcpTransport::connect(
            &addr,
            "wrong",
            Duration::from_millis(200),
            Duration::from_secs(5),
        )
        .expect_err("handshake must fail");
        assert!(err.contains("bad token"), "{err}");
        assert!(agent.join().unwrap().is_err(), "agent reports the refusal");
    }

    #[test]
    fn handshake_refuses_non_protocol_peers() {
        // The "agent" is a plain listener that answers garbage: the
        // supervisor must classify it as a bad handshake, not hang.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let peer = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut half = &stream;
            let _ = writeln!(half, "HTTP/1.1 400 Bad Request");
        });
        let err = TcpTransport::connect(
            &addr,
            "",
            Duration::from_millis(200),
            Duration::from_secs(5),
        )
        .expect_err("garbage reply must fail the handshake");
        assert!(err.contains("malformed handshake"), "{err}");
        peer.join().unwrap();
    }

    #[test]
    fn handshake_times_out_on_a_silent_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // Nobody accepts or answers; the connect itself succeeds via the
        // listen backlog, so the timeout must come from the reply read.
        let err = TcpTransport::connect(
            &addr,
            "",
            Duration::from_millis(200),
            Duration::from_millis(300),
        )
        .expect_err("silent peer must time out");
        assert!(err.contains("timed out"), "{err}");
        drop(listener);
    }

    #[test]
    fn agent_rejects_schema_from_the_future() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let agent = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            handshake_accept(&stream, "", 0)
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut half = &stream;
        let hello = Hello {
            schema: FLEET_SCHEMA_VERSION + 1,
            token: String::new(),
            heartbeat_ms: 100,
        };
        writeln!(half, "{}", hello.to_jsonl()).unwrap();
        let reply = read_handshake_line(&mut half).unwrap();
        match HelloReply::from_jsonl(&reply) {
            Some(HelloReply::Err { error }) => {
                assert!(error.contains("unsupported schema"), "{error}");
            }
            other => panic!("expected hello_err, got {other:?}"),
        }
        assert!(agent.join().unwrap().is_err());
    }
}
