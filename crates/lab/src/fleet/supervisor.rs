//! The supervisor: owns the journal and cache through the wrapped
//! [`Engine`], shards the pending cell list into leases, drives workers
//! over pluggable [`Transport`]s (local subprocess pipes and TCP agents,
//! freely mixed per slot), and flushes results in pending order so
//! journal bytes are identical to the in-process engine's (see the
//! module docs in [`crate::fleet`] for the full parity argument).
//!
//! A transport death — worker crash, dropped connection, heartbeat gap —
//! is always the same event: abandon the lease back to the [`LeaseBook`]
//! (front-requeue), retire the worker, and schedule its *slot* for
//! respawn with exponential backoff. For a pipe slot that respawn is a
//! fresh subprocess; for a TCP slot it is a reconnect to the same agent
//! address, which may serve a late result from its superseded lease
//! first — discarded as stale by the book, never journalled twice.

use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use synran_sim::Telemetry;

use crate::cell::{Cell, CellResult};
use crate::engine::{pending_order, CellRunner, Engine};
use crate::fleet::frame::{looks_like_json, Frame, FrameReader, GARBAGE_FRAME_LIMIT};
use crate::fleet::lease::{Delivery, LeaseBook, Requeue};
use crate::fleet::net::{PipeTransport, SlotSpec, TcpTransport, Transport};
use crate::fleet::proto::{FromWorker, Lease, ToWorker};
use crate::fleet::state::SidecarWriter;
use crate::registry::{run_cell, validate_cell};
use crate::LabError;

/// Spawn failures tolerated per *local* worker slot before the slot is
/// given up. Remote slots use [`FleetConfig::connect_attempts`] instead —
/// an agent being restarted deserves more patience than a binary that
/// cannot exec.
const SPAWN_GIVE_UP: u32 = 3;

/// Tuning knobs for a [`Fleet`] run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker subprocess count; `<= 1` means run in-process.
    pub procs: usize,
    /// Worker argv; empty means `current_exe() campaign worker`.
    pub worker: Vec<String>,
    /// A lease older than this is presumed wedged: the worker is killed
    /// and the cell re-leased.
    pub cell_timeout: Duration,
    /// Silence longer than this from a worker with an active lease is
    /// presumed death: kill and re-lease.
    pub heartbeat_timeout: Duration,
    /// How often workers beacon while a cell executes (exported to the
    /// worker via `SYNRAN_FLEET_HEARTBEAT_MS`).
    pub heartbeat_interval: Duration,
    /// Attempts per cell before recording a structured failure.
    pub max_attempts: u32,
    /// Base respawn backoff, doubled per consecutive spawn failure.
    pub backoff: Duration,
    /// One entry per worker slot; kept in sync with `procs`. All-local
    /// by default; `--workers` mixes in TCP agent addresses.
    pub slots: Vec<SlotSpec>,
    /// Shared secret presented in the TCP handshake (empty by default;
    /// agents started without a token accept it).
    pub token: String,
    /// Per-attempt bound on TCP connect + handshake.
    pub connect_timeout: Duration,
    /// Consecutive failed (re)connects tolerated per TCP slot before
    /// that slot is given up.
    pub connect_attempts: u32,
}

impl FleetConfig {
    /// Defaults for `procs` workers: 600 s cell timeout, 10 s heartbeat
    /// timeout, 200 ms heartbeat interval, 3 attempts, 100 ms backoff.
    #[must_use]
    pub fn new(procs: usize) -> FleetConfig {
        FleetConfig {
            procs,
            worker: Vec::new(),
            cell_timeout: Duration::from_secs(600),
            heartbeat_timeout: Duration::from_secs(10),
            heartbeat_interval: Duration::from_millis(200),
            max_attempts: 3,
            backoff: Duration::from_millis(100),
            slots: vec![SlotSpec::Local; procs],
            token: String::new(),
            connect_timeout: Duration::from_secs(5),
            connect_attempts: 6,
        }
    }

    /// Replaces the slot layout from a `--workers` list (see
    /// [`crate::fleet::parse_workers`]); `procs` follows the slot count.
    pub fn with_workers(mut self, spec: &str) -> Result<FleetConfig, String> {
        self.slots = crate::fleet::net::parse_workers(spec)?;
        self.procs = self.slots.len();
        Ok(self)
    }

    /// Whether any slot crosses a socket.
    #[must_use]
    pub fn has_remote(&self) -> bool {
        self.slots.iter().any(|s| matches!(s, SlotSpec::Tcp(_)))
    }

    /// Whether this config calls for fleet execution at all: more than
    /// one slot, or any remote slot (a single *remote* worker is still a
    /// fleet — the work must cross the wire).
    #[must_use]
    pub fn engages(&self) -> bool {
        self.slots.len() > 1 || self.has_remote()
    }

    /// [`new`](FleetConfig::new), then millisecond/count overrides from
    /// `SYNRAN_FLEET_TIMEOUT_MS`, `SYNRAN_FLEET_HEARTBEAT_TIMEOUT_MS`,
    /// `SYNRAN_FLEET_HEARTBEAT_MS`, `SYNRAN_FLEET_MAX_ATTEMPTS`,
    /// `SYNRAN_FLEET_BACKOFF_MS`, `SYNRAN_FLEET_CONNECT_TIMEOUT_MS`,
    /// `SYNRAN_FLEET_CONNECT_ATTEMPTS`, and `SYNRAN_FLEET_TOKEN` — the
    /// test hooks.
    #[must_use]
    pub fn from_env(procs: usize) -> FleetConfig {
        fn ms(var: &str) -> Option<Duration> {
            std::env::var(var)
                .ok()?
                .parse()
                .ok()
                .map(Duration::from_millis)
        }
        let mut cfg = FleetConfig::new(procs);
        if let Some(v) = ms("SYNRAN_FLEET_TIMEOUT_MS") {
            cfg.cell_timeout = v;
        }
        if let Some(v) = ms("SYNRAN_FLEET_HEARTBEAT_TIMEOUT_MS") {
            cfg.heartbeat_timeout = v;
        }
        if let Some(v) = ms("SYNRAN_FLEET_HEARTBEAT_MS") {
            cfg.heartbeat_interval = v;
        }
        if let Some(v) = std::env::var("SYNRAN_FLEET_MAX_ATTEMPTS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.max_attempts = v;
        }
        if let Some(v) = ms("SYNRAN_FLEET_BACKOFF_MS") {
            cfg.backoff = v;
        }
        if let Some(v) = ms("SYNRAN_FLEET_CONNECT_TIMEOUT_MS") {
            cfg.connect_timeout = v;
        }
        if let Some(v) = std::env::var("SYNRAN_FLEET_CONNECT_ATTEMPTS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.connect_attempts = v;
        }
        if let Ok(v) = std::env::var("SYNRAN_FLEET_TOKEN") {
            cfg.token = v;
        }
        cfg
    }
}

/// The multi-process campaign runner: an [`Engine`] (which keeps owning
/// the journal, cache, telemetry, and progress sink) plus the process
/// fleet that executes pending cells on its behalf.
#[derive(Debug)]
pub struct Fleet {
    engine: Engine,
    config: FleetConfig,
}

impl Fleet {
    /// Wraps an engine with fleet execution per `config`.
    #[must_use]
    pub fn new(engine: Engine, config: FleetConfig) -> Fleet {
        Fleet { engine, config }
    }

    /// The wrapped engine (journal owner and run accounting).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl CellRunner for Fleet {
    fn run_cells(&mut self, cells: &[Cell]) -> Result<Vec<CellResult>, LabError> {
        if !self.config.engages() {
            return self.engine.run_cells(cells);
        }
        match run_fleet(&mut self.engine, &self.config, cells) {
            Ok(results) => Ok(results),
            Err(FleetError::Spawn(msg)) => {
                eprintln!("fleet: {msg}; falling back to the in-process engine");
                self.engine.run_cells(cells)
            }
            Err(FleetError::Lab(e)) => Err(e),
        }
    }

    fn telemetry(&self) -> &Telemetry {
        self.engine.telemetry()
    }

    fn executed(&self) -> usize {
        self.engine.executed()
    }

    fn cache_hits(&self) -> usize {
        self.engine.cache_hits()
    }
}

/// Internal error split: `Spawn` (no worker ever started — the caller
/// falls back to the in-process engine) vs `Lab` (a real campaign
/// error, surfaced as-is).
enum FleetError {
    Spawn(String),
    Lab(LabError),
}

impl From<LabError> for FleetError {
    fn from(e: LabError) -> FleetError {
        FleetError::Lab(e)
    }
}

/// The full fleet run: validate, cache-splice, drive the fleet over the
/// pending order, return results in cell order.
fn run_fleet(
    engine: &mut Engine,
    cfg: &FleetConfig,
    cells: &[Cell],
) -> Result<Vec<CellResult>, FleetError> {
    let start = Instant::now();
    // Fail fast — and deterministically, by cell order — before any
    // process spawns. This covers every error the in-process engine can
    // hit for resolvable-but-misconfigured cells.
    for cell in cells {
        validate_cell(cell)?;
    }
    let hashes: Vec<String> = cells.iter().map(Cell::content_hash).collect();
    let mut results: Vec<Option<CellResult>> = hashes.iter().map(|h| engine.cache_get(h)).collect();
    let warm = results.iter().filter(|r| r.is_some()).count();
    engine.note_cache_hits(warm);
    let pending = pending_order(&hashes, &results);

    engine.emit_heartbeat(warm, cells.len(), 0, warm, start);

    let mut run_executed = 0usize;
    let failures = if pending.is_empty() {
        BTreeMap::new()
    } else {
        let (tx, rx) = mpsc::channel();
        let mut ctx = Ctx {
            cfg,
            cells,
            hashes: &hashes,
            pending: &pending,
            telemetry: engine.telemetry().clone(),
            engine,
            results: &mut results,
            book: LeaseBook::new(pending.len(), cfg.max_attempts),
            workers: HashMap::new(),
            next_wid: 0,
            slot_connects: vec![0; cfg.slots.len()],
            respawn: Vec::new(),
            arrived: HashMap::new(),
            cursor: 0,
            sidecar: None,
            argv: worker_argv(cfg).map_err(FleetError::Spawn)?,
            tx,
            rx,
            run_executed: 0,
            warm,
            last_beat: warm,
            start,
        };
        let outcome = ctx.drive();
        // Tear down every transport no matter how the drive ended: a
        // best-effort shutdown line, then close — which kills and reaps
        // a subprocess, and half-closes a socket so the agent drains
        // back to its accept loop.
        for (_, mut worker) in ctx.workers.drain() {
            let _ = worker.transport.send(&ToWorker::Shutdown.to_jsonl());
            worker.transport.close();
        }
        run_executed = ctx.run_executed;
        let failures = ctx.book.failed().clone();
        let sidecar = ctx.sidecar.take();
        outcome?;
        if let Some(sidecar) = sidecar {
            if failures.is_empty() {
                sidecar.remove()?;
            }
        }
        failures
    };

    engine.finish_counters(cells.len(), run_executed, warm, start);

    if let Some((&pi, error)) = failures.iter().next() {
        // First failure by pending order is also first by cell order:
        // pending is ascending in cell index.
        let cell = &cells[pending[pi]];
        return Err(FleetError::Lab(LabError::Fleet(format!(
            "cell {} ({}/{} n={} seed={}) failed permanently: {} ({} of {} cells failed)",
            pending[pi],
            cell.protocol,
            cell.adversary,
            cell.n,
            cell.seed,
            error,
            failures.len(),
            pending.len(),
        ))));
    }

    Ok(results
        .into_iter()
        .map(|r| r.expect("every cell executed or cached"))
        .collect())
}

/// Resolves the worker argv: explicit from config, or this very binary's
/// hidden `campaign worker` subcommand.
fn worker_argv(cfg: &FleetConfig) -> Result<Vec<String>, String> {
    if !cfg.worker.is_empty() {
        return Ok(cfg.worker.clone());
    }
    let exe = std::env::current_exe().map_err(|e| format!("cannot resolve current exe: {e}"))?;
    Ok(vec![
        exe.to_string_lossy().into_owned(),
        "campaign".to_string(),
        "worker".to_string(),
    ])
}

/// The reader-thread body: frames a worker's byte stream through the
/// hardened [`FrameReader`] (bounded lines, forgiving classification) and
/// forwards parsed messages. Unknown-but-well-formed JSON lines are
/// skipped for forward compatibility; anything else counts toward
/// [`GARBAGE_FRAME_LIMIT`], after which the worker is reported through
/// the structured protocol-error path instead of ever panicking or
/// buffering without bound.
fn read_worker(
    reader: Box<dyn std::io::Read + Send>,
    wid: usize,
    tx: &mpsc::Sender<(usize, Event)>,
    telemetry: &Telemetry,
) {
    let mut frames = FrameReader::new(reader);
    let mut consecutive_garbage = 0u32;
    // `while let` ends on `Ok(None)` and `Err(_)` alike — EOF and a dead
    // socket are the same thing here.
    while let Ok(Some(frame)) = frames.next_frame() {
        match frame {
            Frame::Line(line) => {
                telemetry.incr("fleet.net.bytes_read", line.len() as u64 + 1);
                if let Some(msg) = FromWorker::from_jsonl(&line) {
                    consecutive_garbage = 0;
                    if tx.send((wid, Event::Msg(msg))).is_err() {
                        return;
                    }
                } else if looks_like_json(&line) {
                    // A message from a newer peer: skip, stay friendly.
                    telemetry.incr("fleet.net.unknown_lines", 1);
                } else {
                    telemetry.incr("fleet.net.malformed_lines", 1);
                    consecutive_garbage += 1;
                }
            }
            Frame::Oversized { bytes } => {
                telemetry.incr("fleet.net.bytes_read", bytes as u64 + 1);
                telemetry.incr("fleet.net.oversized_lines", 1);
                consecutive_garbage += 1;
            }
            Frame::Malformed { bytes } => {
                telemetry.incr("fleet.net.bytes_read", bytes as u64 + 1);
                telemetry.incr("fleet.net.malformed_lines", 1);
                consecutive_garbage += 1;
            }
        }
        if consecutive_garbage >= GARBAGE_FRAME_LIMIT {
            let _ = tx.send((wid, Event::Garbage));
            return;
        }
    }
    let _ = tx.send((wid, Event::Eof));
}

/// One live worker, however it is reached.
struct WorkerHandle {
    transport: Box<dyn Transport>,
    /// Which [`FleetConfig::slots`] entry this worker fills.
    slot: usize,
    /// `(lease id, issue time)` of the cell it is executing, if any.
    lease: Option<(u64, Instant)>,
    /// Last time any message arrived from it.
    last_msg: Instant,
}

/// What a reader thread forwards about its worker.
enum Event {
    Msg(FromWorker),
    /// The peer crossed [`GARBAGE_FRAME_LIMIT`] consecutive unusable
    /// frames: the structured protocol-error path. The worker is
    /// retired like a crash, never trusted to finish its lease.
    Garbage,
    Eof,
}

/// A worker slot awaiting respawn: which slot, when it is due, and the
/// consecutive spawn failures so far.
struct RespawnSlot {
    slot: usize,
    due: Instant,
    fails: u32,
}

/// All mutable state of one fleet drive.
struct Ctx<'a> {
    cfg: &'a FleetConfig,
    cells: &'a [Cell],
    hashes: &'a [String],
    /// Pending order: `pending[i]` is the cell index of pending slot `i`.
    pending: &'a [usize],
    telemetry: Telemetry,
    engine: &'a mut Engine,
    results: &'a mut Vec<Option<CellResult>>,
    book: LeaseBook,
    workers: HashMap<usize, WorkerHandle>,
    next_wid: usize,
    /// Successful connects per slot; 1 = first connect, more = rejoins.
    slot_connects: Vec<u64>,
    respawn: Vec<RespawnSlot>,
    /// Fresh results buffered until the flush cursor reaches them.
    arrived: HashMap<usize, CellResult>,
    /// Next pending index to journal — results flush strictly in
    /// pending order, which is the parity-critical invariant.
    cursor: usize,
    sidecar: Option<SidecarWriter>,
    argv: Vec<String>,
    tx: mpsc::Sender<(usize, Event)>,
    rx: mpsc::Receiver<(usize, Event)>,
    run_executed: usize,
    warm: usize,
    last_beat: usize,
    start: Instant,
}

impl Ctx<'_> {
    /// The supervisor loop: spawn, lease, listen, sweep, flush — until
    /// every pending cell is resolved or failed.
    fn drive(&mut self) -> Result<(), FleetError> {
        // The sidecar opens before the first spawn so per-worker connect
        // events land in it from the start; if no worker ever comes up it
        // is removed again below and the caller falls back to the engine.
        if let Some(journal) = self.engine.journal_path() {
            self.sidecar = Some(SidecarWriter::create(journal, self.cfg.slots.len())?);
        }
        let target = self.cfg.slots.len().min(self.pending.len());
        let mut last_spawn_err = String::new();
        for slot in 0..target {
            match self.spawn_worker(slot) {
                Ok(wid) => self.note_worker(wid)?,
                Err(e) => {
                    // A dead local binary stays dead — drop the slot, as
                    // before. An unreachable agent may just be starting
                    // (or restarting): give it the backoff schedule.
                    if matches!(self.cfg.slots[slot], SlotSpec::Tcp(_)) {
                        eprintln!("fleet: worker slot {slot}: {e}");
                        self.respawn.push(RespawnSlot {
                            slot,
                            due: Instant::now() + self.cfg.backoff,
                            fails: 1,
                        });
                    }
                    last_spawn_err = e;
                }
            }
        }
        if self.workers.is_empty() && self.respawn.is_empty() {
            if let Some(sidecar) = self.sidecar.take() {
                sidecar.remove()?;
            }
            return Err(FleetError::Spawn(last_spawn_err));
        }

        loop {
            if self.book.all_resolved() {
                return Ok(());
            }
            self.process_respawns()?;
            if self.workers.is_empty() && self.respawn.is_empty() {
                // Every worker slot died permanently: graceful
                // degradation — finish the remaining leases inline.
                self.run_inline()?;
            }
            self.assign_leases()?;
            self.drain_events()?;
            self.sweep_deadlines()?;
            self.flush_ready()?;
        }
    }

    /// Brings up one worker on the given slot — a subprocess for a local
    /// slot, a connect + handshake for a TCP slot — plus its hardened
    /// reader thread. Returns the new worker id.
    fn spawn_worker(&mut self, slot: usize) -> Result<usize, String> {
        let mut transport: Box<dyn Transport> = match &self.cfg.slots[slot] {
            SlotSpec::Local => Box::new(PipeTransport::spawn(
                &self.argv,
                self.cfg.heartbeat_interval,
            )?),
            SlotSpec::Tcp(addr) => Box::new(TcpTransport::connect(
                addr,
                &self.cfg.token,
                self.cfg.heartbeat_interval,
                self.cfg.connect_timeout,
            )?),
        };
        let wid = self.next_wid;
        self.next_wid += 1;
        let reader = transport
            .take_reader()
            .expect("fresh transport has a reader");
        let tx = self.tx.clone();
        let telemetry = self.telemetry.clone();
        std::thread::spawn(move || read_worker(reader, wid, &tx, &telemetry));
        self.telemetry.incr(
            if self.slot_connects[slot] == 0 {
                "fleet.net.connects"
            } else {
                "fleet.net.reconnects"
            },
            1,
        );
        self.slot_connects[slot] += 1;
        self.workers.insert(
            wid,
            WorkerHandle {
                transport,
                slot,
                lease: None,
                last_msg: Instant::now(),
            },
        );
        Ok(wid)
    }

    /// Records a fresh worker's transport identity in the sidecar (how
    /// `campaign status` and `synran report` attribute restarts to a
    /// pipe vs a TCP peer).
    fn note_worker(&mut self, wid: usize) -> Result<(), FleetError> {
        let Some(worker) = self.workers.get(&wid) else {
            return Ok(());
        };
        if let Some(sidecar) = &mut self.sidecar {
            sidecar.worker(
                worker.slot,
                worker.transport.kind(),
                &worker.transport.peer(),
            )?;
        }
        Ok(())
    }

    /// Consecutive failures tolerated when bringing this slot up.
    fn give_up_after(&self, slot: usize) -> u32 {
        match self.cfg.slots[slot] {
            SlotSpec::Local => SPAWN_GIVE_UP,
            SlotSpec::Tcp(_) => self.cfg.connect_attempts.max(1),
        }
    }

    /// Brings due respawn slots back up, dropping slots that are no
    /// longer needed or that failed to spawn too many times in a row.
    fn process_respawns(&mut self) -> Result<(), FleetError> {
        let now = Instant::now();
        let due: Vec<RespawnSlot> = {
            let (due, later) = std::mem::take(&mut self.respawn)
                .into_iter()
                .partition(|slot| slot.due <= now);
            self.respawn = later;
            due
        };
        for pending_slot in due {
            if self.workers.len() >= self.cfg.slots.len().min(self.book.unresolved()) {
                continue; // Shrink the fleet as the tail drains.
            }
            match self.spawn_worker(pending_slot.slot) {
                Ok(wid) => self.note_worker(wid)?,
                Err(msg) => {
                    let fails = pending_slot.fails + 1;
                    if fails >= self.give_up_after(pending_slot.slot) {
                        eprintln!("fleet: giving up worker slot {}: {msg}", pending_slot.slot);
                    } else {
                        self.respawn.push(RespawnSlot {
                            slot: pending_slot.slot,
                            due: now + self.cfg.backoff * 2u32.saturating_pow(fails),
                            fails,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Hands queued leases to idle workers.
    fn assign_leases(&mut self) -> Result<(), FleetError> {
        let mut dead: Vec<(usize, u64)> = Vec::new();
        let wids: Vec<usize> = self.workers.keys().copied().collect();
        for wid in wids {
            let Some(worker) = self.workers.get(&wid) else {
                continue;
            };
            if worker.lease.is_some() {
                continue;
            }
            let Some((id, index, attempt)) = self.book.issue() else {
                break;
            };
            self.telemetry.incr(
                if attempt == 0 {
                    "fleet.leases.issued"
                } else {
                    "fleet.leases.reissued"
                },
                1,
            );
            if let Some(sidecar) = &mut self.sidecar {
                sidecar.lease(index, attempt)?;
            }
            let lease = Lease {
                id,
                index,
                attempt,
                cell: self.cells[self.pending[index]].clone(),
            };
            let line = ToWorker::Lease(lease).to_jsonl();
            let worker = self.workers.get_mut(&wid).expect("checked above");
            match worker.transport.send(&line) {
                Ok(()) => {
                    self.telemetry
                        .incr("fleet.net.bytes_written", line.len() as u64 + 1);
                    let now = Instant::now();
                    worker.lease = Some((id, now));
                    worker.last_msg = now;
                }
                // EPIPE / reset: the worker is gone.
                Err(_) => dead.push((wid, id)),
            }
        }
        for (wid, id) in dead {
            self.abandon_lease(id, "worker transport closed")?;
            self.retire_worker(wid)?;
        }
        Ok(())
    }

    /// Drains worker messages: one blocking receive (bounded, so the
    /// deadline sweep still runs on schedule) then everything queued.
    fn drain_events(&mut self) -> Result<(), FleetError> {
        match self.rx.recv_timeout(Duration::from_millis(20)) {
            Ok(event) => {
                self.handle_event(event)?;
                while let Ok(event) = self.rx.try_recv() {
                    self.handle_event(event)?;
                }
                Ok(())
            }
            Err(mpsc::RecvTimeoutError::Timeout | mpsc::RecvTimeoutError::Disconnected) => Ok(()),
        }
    }

    fn handle_event(&mut self, (wid, event): (usize, Event)) -> Result<(), FleetError> {
        match event {
            Event::Msg(msg) => {
                let now = Instant::now();
                let current_lease = match self.workers.get_mut(&wid) {
                    Some(worker) => {
                        worker.last_msg = now;
                        worker.lease.map(|(id, _)| id)
                    }
                    // A message from a worker already killed/retired can
                    // still surface from its pipe buffer — the classic
                    // stale-result source. Process it through the book.
                    None => None,
                };
                match msg {
                    FromWorker::Ready { .. } | FromWorker::Heartbeat { .. } => {}
                    FromWorker::Result { id, result, .. } => match self.book.complete(id) {
                        Delivery::Fresh(index) => {
                            self.arrived.insert(index, result);
                            if let Some(sidecar) = &mut self.sidecar {
                                sidecar.done(index)?;
                            }
                            if current_lease == Some(id) {
                                if let Some(worker) = self.workers.get_mut(&wid) {
                                    worker.lease = None;
                                }
                            }
                        }
                        Delivery::Stale => {
                            self.telemetry.incr("fleet.stale_results", 1);
                        }
                    },
                    FromWorker::CellError { id, error, .. } => match self.book.fail(id, &error) {
                        Some(index) => {
                            self.telemetry.incr("fleet.cells.failed", 1);
                            if let Some(sidecar) = &mut self.sidecar {
                                sidecar.failed(index)?;
                            }
                            if current_lease == Some(id) {
                                if let Some(worker) = self.workers.get_mut(&wid) {
                                    worker.lease = None;
                                }
                            }
                        }
                        None => {
                            self.telemetry.incr("fleet.stale_results", 1);
                        }
                    },
                }
            }
            Event::Garbage => {
                self.telemetry.incr("fleet.net.protocol_errors", 1);
                let Some(lease) = self.workers.get(&wid).map(|w| w.lease) else {
                    return Ok(()); // Already retired.
                };
                if let Some((id, _)) = lease {
                    self.abandon_lease(id, "worker stream degenerated into garbage")?;
                }
                self.retire_worker(wid)?;
            }
            Event::Eof => {
                let Some(lease) = self.workers.get(&wid).map(|w| w.lease) else {
                    return Ok(()); // Already retired by a deadline sweep.
                };
                if let Some((id, _)) = lease {
                    self.abandon_lease(id, "worker exited mid-lease")?;
                }
                self.retire_worker(wid)?;
            }
        }
        Ok(())
    }

    /// Kills workers whose lease overran the cell timeout or whose
    /// heartbeats went silent, and re-leases their cells.
    fn sweep_deadlines(&mut self) -> Result<(), FleetError> {
        let now = Instant::now();
        let mut expired: Vec<(usize, u64, &'static str, bool, bool)> = Vec::new();
        for (&wid, worker) in &self.workers {
            let Some((id, issued)) = worker.lease else {
                continue; // Idle workers do not heartbeat.
            };
            let remote = worker.transport.kind() == "tcp";
            if now.duration_since(issued) >= self.cfg.cell_timeout {
                expired.push((wid, id, "cell timeout exceeded", false, remote));
            } else if now.duration_since(worker.last_msg) >= self.cfg.heartbeat_timeout {
                expired.push((wid, id, "heartbeat gap", true, remote));
            }
        }
        for (wid, id, reason, gap, remote) in expired {
            if gap {
                self.telemetry.incr("fleet.heartbeat.gaps", 1);
                if remote {
                    self.telemetry.incr("fleet.net.heartbeat_gaps", 1);
                }
            }
            self.abandon_lease(id, reason)?;
            self.retire_worker(wid)?;
        }
        Ok(())
    }

    /// Requeues (or fails out) an abandoned lease.
    fn abandon_lease(&mut self, id: u64, reason: &str) -> Result<(), FleetError> {
        match self.book.abandon(id, reason) {
            Some(Requeue::Retry { .. }) | None => {}
            Some(Requeue::Exhausted { index }) => {
                self.telemetry.incr("fleet.cells.failed", 1);
                if let Some(sidecar) = &mut self.sidecar {
                    sidecar.failed(index)?;
                }
            }
        }
        Ok(())
    }

    /// Closes a worker's transport (kill + reap for a subprocess; write
    /// half-close for a socket, letting stale results drain) and
    /// schedules its slot for respawn/reconnect.
    fn retire_worker(&mut self, wid: usize) -> Result<(), FleetError> {
        let Some(mut worker) = self.workers.remove(&wid) else {
            return Ok(());
        };
        worker.transport.close();
        self.telemetry.incr("fleet.worker.restarts", 1);
        if let Some(sidecar) = &mut self.sidecar {
            sidecar.restart()?;
        }
        self.respawn.push(RespawnSlot {
            slot: worker.slot,
            due: Instant::now() + self.cfg.backoff,
            fails: 0,
        });
        Ok(())
    }

    /// Last-resort degradation: every worker slot is gone, so the
    /// supervisor executes the remaining leases itself, in-process.
    /// Results are identical by construction (a cell's result is a pure
    /// function of its fields) and telemetry stays off exactly as in a
    /// worker.
    fn run_inline(&mut self) -> Result<(), FleetError> {
        while let Some((id, index, attempt)) = self.book.issue() {
            self.telemetry.incr(
                if attempt == 0 {
                    "fleet.leases.issued"
                } else {
                    "fleet.leases.reissued"
                },
                1,
            );
            if let Some(sidecar) = &mut self.sidecar {
                sidecar.lease(index, attempt)?;
            }
            match run_cell(&self.cells[self.pending[index]], &Telemetry::off()) {
                Ok(result) => {
                    self.book.complete(id);
                    self.arrived.insert(index, result);
                    if let Some(sidecar) = &mut self.sidecar {
                        sidecar.done(index)?;
                    }
                }
                Err(e) => {
                    if let Some(failed) = self.book.fail(id, &e.to_string()) {
                        self.telemetry.incr("fleet.cells.failed", 1);
                        if let Some(sidecar) = &mut self.sidecar {
                            sidecar.failed(failed)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Journals the contiguous prefix of arrived results, in pending
    /// order — the invariant that makes fleet journals byte-identical
    /// to the engine's. Failed cells journal nothing and are skipped.
    fn flush_ready(&mut self) -> Result<(), FleetError> {
        let mut flushed = false;
        loop {
            if let Some(result) = self.arrived.remove(&self.cursor) {
                let i = self.pending[self.cursor];
                self.engine
                    .record(&self.cells[i], &self.hashes[i], result)?;
                self.run_executed += 1;
                self.cursor += 1;
                flushed = true;
            } else if self.book.failed().contains_key(&self.cursor) {
                self.cursor += 1;
            } else {
                break;
            }
        }
        if flushed {
            for (i, slot) in self.results.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = self.engine.cache_get(&self.hashes[i]);
                }
            }
            let done = self.results.iter().filter(|r| r.is_some()).count();
            if let Some(every) = self.engine.progress_every() {
                if done - self.last_beat >= every || done == self.cells.len() {
                    self.last_beat = done;
                    self.engine.emit_heartbeat(
                        done,
                        self.cells.len(),
                        self.run_executed,
                        self.warm,
                        self.start,
                    );
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synran-fleet-sup-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn grid() -> Vec<Cell> {
        let mut cells = Vec::new();
        for n in [8usize, 10] {
            for seed in [1u64, 2] {
                let mut cell = Cell::new("synran", "balancer", n);
                cell.runs = 3;
                cell.seed = seed;
                cell.max_rounds = 100_000;
                cells.push(cell);
            }
        }
        cells
    }

    #[test]
    fn procs_one_is_exactly_the_engine() {
        let cells = grid();
        let baseline = Engine::new(1, Telemetry::off()).run_cells(&cells).unwrap();
        let mut fleet = Fleet::new(Engine::new(1, Telemetry::off()), FleetConfig::new(1));
        assert_eq!(fleet.run_cells(&cells).unwrap(), baseline);
        assert_eq!(fleet.executed(), cells.len());
    }

    #[test]
    fn spawn_failure_falls_back_to_the_engine() {
        let cells = grid();
        let baseline = Engine::new(1, Telemetry::off()).run_cells(&cells).unwrap();
        let mut config = FleetConfig::new(2);
        config.worker = vec!["/nonexistent/synran-fleet-test-binary".to_string()];
        let dir = tmpdir("fallback");
        let path = dir.join("fb.journal.jsonl");
        let (journal, cache) = Journal::open(&path).unwrap();
        let engine = Engine::new(1, Telemetry::off()).with_journal(journal, cache);
        let mut fleet = Fleet::new(engine, config);
        assert_eq!(fleet.run_cells(&cells).unwrap(), baseline);
        assert_eq!(fleet.executed(), cells.len());
        // No sidecar lingers after a fallback run.
        assert!(!crate::fleet::fleet_sidecar_path(&path).exists());
    }

    #[test]
    fn unresponsive_workers_exhaust_attempts_into_a_structured_failure() {
        let cells = grid()[..2].to_vec();
        let mut config = FleetConfig::new(2);
        // `cat` spawns fine but never speaks the protocol: every lease
        // dies by heartbeat gap until attempts run out.
        config.worker = vec!["cat".to_string()];
        config.heartbeat_timeout = Duration::from_millis(100);
        config.backoff = Duration::from_millis(10);
        config.max_attempts = 2;
        let dir = tmpdir("exhaust");
        let path = dir.join("ex.journal.jsonl");
        let (journal, cache) = Journal::open(&path).unwrap();
        let telemetry = Telemetry::new(synran_sim::telemetry::TelemetryMode::Counters);
        let engine = Engine::new(1, telemetry.clone()).with_journal(journal, cache);
        let mut fleet = Fleet::new(engine, config);
        let err = fleet.run_cells(&cells).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("fleet error"), "{msg}");
        assert!(msg.contains("failed permanently"), "{msg}");
        // The sidecar survives a failed run so `campaign status` can
        // report it.
        let status = crate::fleet::scan_fleet_sidecar(&crate::fleet::fleet_sidecar_path(&path))
            .unwrap()
            .expect("sidecar kept on failure");
        assert_eq!(status.failed, 2);
        assert_eq!(status.outstanding, 0);
        assert!(status.restarts >= 4, "{status:?}");
    }

    #[test]
    fn validation_errors_surface_before_any_spawn() {
        let mut cells = grid();
        cells[1].protocol = "bogus".into();
        let mut config = FleetConfig::new(2);
        // Would hang forever if a worker were consulted.
        config.worker = vec!["cat".to_string()];
        let mut fleet = Fleet::new(Engine::new(1, Telemetry::off()), config);
        let err = fleet.run_cells(&cells).unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    #[test]
    fn config_env_overrides_parse() {
        // from_env reads five knobs; exercise the parse paths without
        // touching the global environment (set-and-unset would race
        // other tests), by checking the defaults survive absent vars.
        let cfg = FleetConfig::from_env(4);
        assert_eq!(cfg.procs, 4);
        assert_eq!(cfg.max_attempts, 3);
        assert_eq!(cfg.cell_timeout, Duration::from_secs(600));
    }
}
