//! The long-lived network worker: `synran campaign agent --listen ADDR`.
//!
//! An agent binds a TCP listener and serves supervisor connections one at
//! a time: accept, run the token/schema handshake ([`handshake_accept`]),
//! then hand the socket to the same [`serve`] loop the pipe workers use —
//! `ready`, leases in, results out, heartbeats while a cell runs. When a
//! supervisor disconnects (campaign done, or it retired this worker), the
//! agent goes straight back to `accept`, so one agent serves any number
//! of campaigns in sequence and a supervisor's backoff reconnect finds it
//! again after a fault.
//!
//! Failure semantics deliberately mirror the pipe workers: a cell panic
//! unwinds out of `serve` and kills the agent *process* — supervisors
//! already treat a dead peer correctly, and a half-poisoned agent would
//! be worse than a dead one. Restart it (systemd, a shell loop, or the
//! e2e tests' explicit respawn) and the supervisor's reconnect rejoins
//! it to the running campaign.

use std::io::BufReader;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

use crate::fleet::net::handshake_accept;
use crate::fleet::worker::{parse_fault, serve};

/// Configuration for [`agent_main`], parsed by the CLI.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Bind address, e.g. `127.0.0.1:7070` or `0.0.0.0:0` (ephemeral).
    pub listen: String,
    /// Shared secret supervisors must present; empty accepts empty.
    pub token: String,
    /// Capability report sent in `hello_ok` (0 = all cores). Recorded by
    /// the supervisor, not enforced here — cells run with the process
    /// default threading either way.
    pub threads: usize,
    /// If set, the bound address is written here once listening — how
    /// scripts and tests discover an ephemeral port race-free.
    pub port_file: Option<PathBuf>,
    /// Exit after serving one connection (tests; production agents loop).
    pub once: bool,
}

/// Runs the agent until killed (or after one connection with
/// `once`). Returns `Err` only for startup failures — a bad bind or an
/// unwritable port file; per-connection trouble is logged to stderr and
/// the loop continues.
pub fn agent_main(cfg: &AgentConfig) -> Result<(), String> {
    let listener =
        TcpListener::bind(&cfg.listen).map_err(|e| format!("listen {}: {e}", cfg.listen))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    if let Some(path) = &cfg.port_file {
        // Write-then-rename so a polling reader never sees a half line.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{local}\n"))
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| format!("port file {}: {e}", path.display()))?;
    }
    eprintln!("agent: listening on {local}");
    let fault = std::env::var("SYNRAN_FLEET_FAULT")
        .ok()
        .as_deref()
        .and_then(parse_fault);
    loop {
        let (stream, peer) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => {
                eprintln!("agent: accept failed: {e}");
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        match handshake_accept(&stream, &cfg.token, cfg.threads) {
            Ok(heartbeat_every) => {
                eprintln!("agent: supervisor {peer} connected");
                let reader = match stream.try_clone() {
                    Ok(clone) => BufReader::new(clone),
                    Err(e) => {
                        eprintln!("agent: clone socket for {peer}: {e}");
                        continue;
                    }
                };
                serve(reader, stream, heartbeat_every.max(MIN_HEARTBEAT), fault);
                eprintln!("agent: supervisor {peer} disconnected");
            }
            Err(e) => eprintln!("agent: rejected {peer}: {e}"),
        }
        if cfg.once {
            return Ok(());
        }
    }
}

/// Floor on the heartbeat cadence a supervisor may request — a hostile
/// `heartbeat_ms=1` must not turn the agent into a busy loop.
const MIN_HEARTBEAT: Duration = Duration::from_millis(10);

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, Write};
    use std::net::TcpStream;

    use crate::fleet::proto::{FromWorker, Hello, HelloReply, ToWorker, FLEET_SCHEMA_VERSION};

    fn start_agent(token: &str, once: bool) -> (std::thread::JoinHandle<()>, String) {
        let dir = std::env::temp_dir().join(format!(
            "synran-agent-test-{}-{}",
            std::process::id(),
            token.len()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let port_file = dir.join("agent.port");
        let cfg = AgentConfig {
            listen: "127.0.0.1:0".to_string(),
            token: token.to_string(),
            threads: 1,
            port_file: Some(port_file.clone()),
            once,
        };
        let handle = std::thread::spawn(move || {
            agent_main(&cfg).expect("agent starts");
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let addr = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                let text = text.trim().to_string();
                if !text.is_empty() {
                    break text;
                }
            }
            assert!(std::time::Instant::now() < deadline, "no port file");
            std::thread::sleep(Duration::from_millis(5));
        };
        (handle, addr)
    }

    #[test]
    fn agent_serves_a_full_lease_cycle_over_tcp() {
        let (handle, addr) = start_agent("tok", true);
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut lines = BufReader::new(stream).lines();
        let hello = Hello {
            schema: FLEET_SCHEMA_VERSION,
            token: "tok".to_string(),
            heartbeat_ms: 200,
        };
        writeln!(writer, "{}", hello.to_jsonl()).unwrap();
        let reply = lines.next().unwrap().unwrap();
        assert!(
            matches!(HelloReply::from_jsonl(&reply), Some(HelloReply::Ok { schema, threads, .. })
                if schema == FLEET_SCHEMA_VERSION && threads == 1),
            "{reply}"
        );
        let ready = lines.next().unwrap().unwrap();
        assert!(
            matches!(
                FromWorker::from_jsonl(&ready),
                Some(FromWorker::Ready { .. })
            ),
            "{ready}"
        );
        let lease = crate::fleet::proto::Lease {
            id: 1,
            index: 0,
            attempt: 0,
            cell: crate::cell::Cell {
                runs: 2,
                seed: 3,
                ..crate::cell::Cell::new("synran", "balancer", 8)
            },
        };
        writeln!(writer, "{}", ToWorker::Lease(lease).to_jsonl()).unwrap();
        let answer = loop {
            let line = lines.next().unwrap().unwrap();
            match FromWorker::from_jsonl(&line) {
                Some(FromWorker::Heartbeat { .. }) => continue,
                other => break other,
            }
        };
        assert!(
            matches!(
                answer,
                Some(FromWorker::Result {
                    id: 1,
                    index: 0,
                    ..
                })
            ),
            "{answer:?}"
        );
        writeln!(writer, "{}", ToWorker::Shutdown.to_jsonl()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn agent_survives_a_rejected_connection_and_serves_the_next() {
        let (handle, addr) = start_agent("right", false);
        // First connection: wrong token, must be refused.
        {
            let stream = TcpStream::connect(&addr).unwrap();
            let mut writer = stream.try_clone().unwrap();
            let hello = Hello {
                schema: FLEET_SCHEMA_VERSION,
                token: "wrong".to_string(),
                heartbeat_ms: 100,
            };
            writeln!(writer, "{}", hello.to_jsonl()).unwrap();
            let mut lines = BufReader::new(stream).lines();
            let reply = lines.next().unwrap().unwrap();
            assert!(
                matches!(HelloReply::from_jsonl(&reply), Some(HelloReply::Err { .. })),
                "{reply}"
            );
        }
        // Second connection: right token, handshake completes.
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let hello = Hello {
            schema: FLEET_SCHEMA_VERSION,
            token: "right".to_string(),
            heartbeat_ms: 100,
        };
        writeln!(writer, "{}", hello.to_jsonl()).unwrap();
        let mut lines = BufReader::new(stream).lines();
        let reply = lines.next().unwrap().unwrap();
        assert!(
            matches!(HelloReply::from_jsonl(&reply), Some(HelloReply::Ok { .. })),
            "{reply}"
        );
        drop(writer);
        drop(lines);
        // The agent thread loops forever; detach it.
        drop(handle);
    }
}
