//! The worker side of the fleet protocol: read leases from stdin, run
//! them, write results to stdout, and emit heartbeats while a cell is
//! executing so the supervisor can tell "slow" from "dead".
//!
//! Workers run cells with [`Telemetry::off`] — per-cell simulator
//! telemetry is not forwarded across the process boundary (observe-only
//! by contract, so nothing the parity tests see can notice). Fault
//! injection for the retry tests is wired through `SYNRAN_FLEET_FAULT=
//! panic:cell=K|hang:cell=K|drop_conn[:cell=K]|stall:cell=K[,ms=N]`: a
//! fault fires on the *first* attempt of pending index `K`, so the
//! supervisor's re-lease of the same cell succeeds deterministically.
//! This loop serves pipes and sockets alike — `synran campaign agent`
//! runs the same `serve` over an accepted TCP connection.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use synran_sim::Telemetry;

use crate::fleet::proto::{FromWorker, Lease, ToWorker};
use crate::registry::run_cell;

/// A deterministic fault to inject, parsed from `SYNRAN_FLEET_FAULT`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fault {
    /// Panic (process death) on first attempt of this pending index.
    Panic(usize),
    /// Hang forever — while still heartbeating — on first attempt of
    /// this pending index, exercising the per-cell timeout kill.
    Hang(usize),
    /// Drop the connection mid-cell on first attempt of this pending
    /// index: `serve` returns without executing or replying, which for a
    /// pipe worker is process death and for a TCP agent is a disconnect
    /// back to its accept loop.
    DropConn(usize),
    /// Go silent — no heartbeats — for this many milliseconds on first
    /// attempt of the pending index, *then* execute and send the result.
    /// With the supervisor's heartbeat timeout below the stall, the
    /// worker is retired mid-stall and its late result arrives on a
    /// superseded lease: the deterministic stale-result discard path.
    Stall(usize, u64),
}

/// Parses `panic:cell=K` / `hang:cell=K` / `drop_conn[:cell=K]` /
/// `stall:cell=K[,ms=N]`; `None` for anything else.
pub(crate) fn parse_fault(spec: &str) -> Option<Fault> {
    if spec == "drop_conn" {
        return Some(Fault::DropConn(0));
    }
    let (kind, rest) = spec.split_once(':')?;
    if kind == "stall" {
        let (cell, ms) = match rest.split_once(',') {
            Some((cell, ms)) => (cell, ms.strip_prefix("ms=")?.parse().ok()?),
            None => (rest, 1500),
        };
        let index = cell.strip_prefix("cell=")?.parse().ok()?;
        return Some(Fault::Stall(index, ms));
    }
    let index = rest.strip_prefix("cell=")?.parse().ok()?;
    match kind {
        "panic" => Some(Fault::Panic(index)),
        "hang" => Some(Fault::Hang(index)),
        "drop_conn" => Some(Fault::DropConn(index)),
        _ => None,
    }
}

/// Serves the worker protocol over the given streams until `Shutdown`,
/// EOF, or a write failure (supervisor gone — exit quietly).
///
/// One lease executes at a time; a heartbeat line is written every
/// `heartbeat_every` while it runs.
pub(crate) fn serve(
    input: impl BufRead,
    output: impl Write + Send,
    heartbeat_every: Duration,
    fault: Option<Fault>,
) {
    let out = Mutex::new(output);
    let send = |msg: &FromWorker| -> bool {
        let mut out = out.lock().unwrap();
        writeln!(out, "{}", msg.to_jsonl())
            .and_then(|()| out.flush())
            .is_ok()
    };

    if !send(&FromWorker::Ready {
        pid: std::process::id(),
    }) {
        return;
    }

    for line in input.lines() {
        let Ok(line) = line else { return };
        match ToWorker::from_jsonl(&line) {
            Some(ToWorker::Lease(lease)) => {
                if matches!(fault, Some(Fault::DropConn(k)) if k == lease.index && lease.attempt == 0)
                {
                    return; // Drop the connection mid-cell, no reply.
                }
                if let Some(Fault::Stall(k, ms)) = fault {
                    if k == lease.index && lease.attempt == 0 {
                        // Silent: past the supervisor's heartbeat
                        // timeout, then the result below goes out stale.
                        std::thread::sleep(Duration::from_millis(ms));
                    }
                }
                let reply = execute(&lease, heartbeat_every, fault, &send);
                if !send(&reply) {
                    return;
                }
            }
            Some(ToWorker::Shutdown) => return,
            None => {} // Skip what we don't understand.
        }
    }
}

/// Runs one lease with a heartbeat thread alongside, honouring the
/// injected fault.
fn execute(
    lease: &Lease,
    heartbeat_every: Duration,
    fault: Option<Fault>,
    send: &(impl Fn(&FromWorker) -> bool + Sync),
) -> FromWorker {
    let stopped = AtomicBool::new(false);
    // Stop the heartbeat thread even when the cell panics — the scope's
    // implicit join would otherwise deadlock the unwind and turn an
    // injected (or real) panic into a silent hang.
    struct StopGuard<'a>(&'a AtomicBool);
    impl Drop for StopGuard<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::Release);
        }
    }
    std::thread::scope(|scope| {
        let _guard = StopGuard(&stopped);
        scope.spawn(|| {
            // Sleep in short slices so the final join never stalls a
            // full heartbeat interval after the cell finishes.
            let slice = Duration::from_millis(5).min(heartbeat_every);
            let mut since_beat = Duration::ZERO;
            while !stopped.load(Ordering::Acquire) {
                std::thread::sleep(slice);
                since_beat += slice;
                if since_beat >= heartbeat_every {
                    since_beat = Duration::ZERO;
                    if !send(&FromWorker::Heartbeat { id: lease.id }) {
                        return;
                    }
                }
            }
        });

        let injected = fault.filter(|_| lease.attempt == 0);
        match injected {
            Some(Fault::Panic(k)) if k == lease.index => {
                panic!("injected fault: panic on cell {k}");
            }
            Some(Fault::Hang(k)) if k == lease.index => loop {
                // Heartbeats keep flowing; only the per-cell timeout
                // can end this lease.
                std::thread::sleep(Duration::from_millis(50));
            },
            _ => {}
        }

        match run_cell(&lease.cell, &Telemetry::off()) {
            Ok(result) => FromWorker::Result {
                id: lease.id,
                index: lease.index,
                result,
            },
            Err(e) => FromWorker::CellError {
                id: lease.id,
                index: lease.index,
                error: e.to_string(),
            },
        }
    })
}

/// Entry point for the hidden `synran campaign worker` subcommand:
/// serves stdin→stdout, reading the heartbeat interval from
/// `SYNRAN_FLEET_HEARTBEAT_MS` (default 200) and the fault hook from
/// `SYNRAN_FLEET_FAULT`.
pub fn worker_main() {
    let heartbeat_every = std::env::var("SYNRAN_FLEET_HEARTBEAT_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or(Duration::from_millis(200), Duration::from_millis);
    let fault = std::env::var("SYNRAN_FLEET_FAULT")
        .ok()
        .as_deref()
        .and_then(parse_fault);
    let stdin = std::io::stdin();
    serve(stdin.lock(), std::io::stdout(), heartbeat_every, fault);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::sync::Arc;

    use crate::cell::Cell;

    /// A `Write` that appends into a shared buffer, so the test can read
    /// what `serve` wrote after it returns (or panics).
    #[derive(Debug, Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn lease(index: usize, attempt: u32) -> Lease {
        Lease {
            id: 100 + index as u64,
            index,
            attempt,
            cell: Cell {
                runs: 2,
                seed: 3,
                max_rounds: 100_000,
                ..Cell::new("synran", "balancer", 8)
            },
        }
    }

    fn messages(buf: &SharedBuf) -> Vec<FromWorker> {
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .filter_map(FromWorker::from_jsonl)
            .collect()
    }

    #[test]
    fn parse_fault_accepts_all_kinds_and_rejects_noise() {
        assert_eq!(parse_fault("panic:cell=3"), Some(Fault::Panic(3)));
        assert_eq!(parse_fault("hang:cell=0"), Some(Fault::Hang(0)));
        assert_eq!(parse_fault("drop_conn"), Some(Fault::DropConn(0)));
        assert_eq!(parse_fault("drop_conn:cell=2"), Some(Fault::DropConn(2)));
        assert_eq!(parse_fault("stall:cell=1"), Some(Fault::Stall(1, 1500)));
        assert_eq!(parse_fault("stall:cell=1,ms=40"), Some(Fault::Stall(1, 40)));
        for bad in [
            "",
            "panic",
            "panic:cell=",
            "explode:cell=1",
            "panic:idx=1",
            "stall:cell=1,ms=",
            "stall:ms=40",
        ] {
            assert_eq!(parse_fault(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn drop_conn_fault_ends_serve_without_a_reply_then_retry_runs_clean() {
        // Attempt 0 of the target cell: serve returns right after Ready,
        // leaving the lease unanswered — the transport-death shape.
        let input = format!(
            "{}\n{}\n",
            ToWorker::Lease(lease(0, 0)).to_jsonl(),
            ToWorker::Lease(lease(1, 0)).to_jsonl(),
        );
        let buf = SharedBuf::default();
        serve(
            Cursor::new(input),
            buf.clone(),
            Duration::from_secs(3600),
            Some(Fault::DropConn(0)),
        );
        let msgs = messages(&buf);
        assert_eq!(msgs.len(), 1, "only Ready before the drop: {msgs:?}");
        assert!(matches!(msgs[0], FromWorker::Ready { .. }));

        // The re-issued lease (attempt 1) on a fresh connection runs.
        let input = format!("{}\n", ToWorker::Lease(lease(0, 1)).to_jsonl());
        let buf = SharedBuf::default();
        serve(
            Cursor::new(input),
            buf.clone(),
            Duration::from_secs(3600),
            Some(Fault::DropConn(0)),
        );
        assert!(matches!(messages(&buf)[1], FromWorker::Result { .. }));
    }

    #[test]
    fn stall_fault_goes_silent_then_still_sends_the_result() {
        let input = format!("{}\n", ToWorker::Lease(lease(0, 0)).to_jsonl());
        let buf = SharedBuf::default();
        let start = std::time::Instant::now();
        serve(
            Cursor::new(input),
            buf.clone(),
            Duration::from_secs(3600),
            Some(Fault::Stall(0, 60)),
        );
        assert!(
            start.elapsed() >= Duration::from_millis(60),
            "stall must actually wait"
        );
        let msgs = messages(&buf);
        assert!(
            matches!(msgs[1], FromWorker::Result { .. }),
            "the late result still goes out: {msgs:?}"
        );
    }

    #[test]
    fn serve_runs_leases_and_matches_direct_execution() {
        let l0 = lease(0, 0);
        let l1 = lease(1, 0);
        let input = format!(
            "{}\nnot a protocol line\n{}\n{}\n",
            ToWorker::Lease(l0.clone()).to_jsonl(),
            ToWorker::Lease(l1.clone()).to_jsonl(),
            ToWorker::Shutdown.to_jsonl(),
        );
        let buf = SharedBuf::default();
        serve(
            Cursor::new(input),
            buf.clone(),
            Duration::from_secs(3600), // no heartbeats in this test
            None,
        );
        let msgs = messages(&buf);
        assert!(matches!(msgs[0], FromWorker::Ready { .. }));
        let expected0 = run_cell(&l0.cell, &Telemetry::off()).unwrap();
        assert_eq!(
            msgs[1],
            FromWorker::Result {
                id: l0.id,
                index: l0.index,
                result: expected0
            }
        );
        assert!(matches!(msgs[2], FromWorker::Result { id, .. } if id == l1.id));
        assert_eq!(msgs.len(), 3);
    }

    #[test]
    fn serve_reports_cell_errors_without_dying() {
        let mut bad = lease(0, 0);
        bad.cell.protocol = "bogus".into();
        let good = lease(1, 0);
        let input = format!(
            "{}\n{}\n",
            ToWorker::Lease(bad.clone()).to_jsonl(),
            ToWorker::Lease(good.clone()).to_jsonl(),
        );
        let buf = SharedBuf::default();
        serve(
            Cursor::new(input),
            buf.clone(),
            Duration::from_secs(3600),
            None,
        );
        let msgs = messages(&buf);
        match &msgs[1] {
            FromWorker::CellError { id, error, .. } => {
                assert_eq!(*id, bad.id);
                assert!(error.contains("bogus"), "{error}");
            }
            other => panic!("expected cell error, got {other:?}"),
        }
        assert!(matches!(msgs[2], FromWorker::Result { id, .. } if id == good.id));
    }

    #[test]
    fn panic_fault_fires_only_on_first_attempt_of_target_cell() {
        // Attempt 0 of cell 0 with panic:cell=0 → the serve call panics
        // (in the real worker the process dies).
        let input = format!("{}\n", ToWorker::Lease(lease(0, 0)).to_jsonl());
        let buf = SharedBuf::default();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            serve(
                Cursor::new(input),
                buf.clone(),
                Duration::from_secs(3600),
                Some(Fault::Panic(0)),
            );
        }));
        assert!(result.is_err(), "injected panic must propagate");

        // Attempt 1 of the same cell: the fault is spent — runs clean.
        let input = format!("{}\n", ToWorker::Lease(lease(0, 1)).to_jsonl());
        let buf = SharedBuf::default();
        serve(
            Cursor::new(input),
            buf.clone(),
            Duration::from_secs(3600),
            Some(Fault::Panic(0)),
        );
        assert!(matches!(messages(&buf)[1], FromWorker::Result { .. }));

        // A different cell with the fault armed: unaffected.
        let input = format!("{}\n", ToWorker::Lease(lease(1, 0)).to_jsonl());
        let buf = SharedBuf::default();
        serve(
            Cursor::new(input),
            buf.clone(),
            Duration::from_secs(3600),
            Some(Fault::Panic(0)),
        );
        assert!(matches!(messages(&buf)[1], FromWorker::Result { .. }));
    }

    #[test]
    fn heartbeats_flow_while_a_cell_executes() {
        // A hang fault keeps the "cell" running forever; drive serve on
        // a helper thread, watch heartbeats accumulate, then let the
        // thread leak (detached) — the test process exits regardless.
        let input = format!("{}\n", ToWorker::Lease(lease(0, 0)).to_jsonl());
        let buf = SharedBuf::default();
        let probe = buf.clone();
        std::thread::spawn(move || {
            serve(
                Cursor::new(input),
                buf,
                Duration::from_millis(10),
                Some(Fault::Hang(0)),
            );
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let beats = messages(&probe)
                .iter()
                .filter(|m| matches!(m, FromWorker::Heartbeat { id } if *id == 100))
                .count();
            if beats >= 3 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "no heartbeats within 10s"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
