//! Lease bookkeeping: which pending cells are queued, outstanding, or
//! resolved, how many attempts each has burned, and which results are
//! stale (answering a lease that was already re-issued).
//!
//! Pure state machine — no I/O, no clocks — so every retry edge case is
//! unit-testable without processes.

use std::collections::{BTreeMap, HashMap, VecDeque};

/// What [`LeaseBook::complete`] says about an arriving result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    /// The lease was outstanding; the result resolves this pending index.
    Fresh(usize),
    /// The lease was already resolved, abandoned, or never issued —
    /// discard the result (counted in `fleet.stale_results`).
    Stale,
}

/// What [`LeaseBook::abandon`] decided about a failed lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Requeue {
    /// The cell goes back on the queue for attempt `attempt`.
    Retry {
        /// The pending index requeued.
        index: usize,
        /// The next attempt number.
        attempt: u32,
    },
    /// Attempts exhausted: the cell is recorded as a structured failure.
    Exhausted {
        /// The pending index that failed permanently.
        index: usize,
    },
}

/// The supervisor's ledger over pending indices `0..total`.
#[derive(Debug)]
pub(crate) struct LeaseBook {
    next_id: u64,
    max_attempts: u32,
    /// `(pending index, attempt)` awaiting a worker, front first.
    queue: VecDeque<(usize, u32)>,
    /// Lease id → `(pending index, attempt)` currently on a worker.
    outstanding: HashMap<u64, (usize, u32)>,
    /// Pending indices resolved with a fresh result.
    resolved: usize,
    total: usize,
    /// Pending index → error text, for cells that exhausted attempts or
    /// failed non-retryably.
    failed: BTreeMap<usize, String>,
    /// Results discarded because their lease was superseded.
    stale: u64,
}

impl LeaseBook {
    /// A book over pending indices `0..total`, each allowed
    /// `max_attempts` attempts (floored at 1).
    pub fn new(total: usize, max_attempts: u32) -> LeaseBook {
        LeaseBook {
            next_id: 0,
            max_attempts: max_attempts.max(1),
            queue: (0..total).map(|i| (i, 0)).collect(),
            outstanding: HashMap::new(),
            resolved: 0,
            total,
            failed: BTreeMap::new(),
            stale: 0,
        }
    }

    /// Issues the next queued lease as `(id, index, attempt)`, or `None`
    /// when the queue is empty.
    pub fn issue(&mut self) -> Option<(u64, usize, u32)> {
        let (index, attempt) = self.queue.pop_front()?;
        let id = self.next_id;
        self.next_id += 1;
        self.outstanding.insert(id, (index, attempt));
        Some((id, index, attempt))
    }

    /// Records a result arriving for lease `id`.
    pub fn complete(&mut self, id: u64) -> Delivery {
        match self.outstanding.remove(&id) {
            Some((index, _)) => {
                self.resolved += 1;
                Delivery::Fresh(index)
            }
            None => {
                self.stale += 1;
                Delivery::Stale
            }
        }
    }

    /// Abandons outstanding lease `id` (worker died, hung, or timed
    /// out): requeues the cell at the front — the retried cell is the
    /// flush cursor's likely blocker — or, when attempts are exhausted,
    /// records `error` as the cell's structured failure. `None` when the
    /// lease was not outstanding (already resolved — nothing to do).
    pub fn abandon(&mut self, id: u64, error: &str) -> Option<Requeue> {
        let (index, attempt) = self.outstanding.remove(&id)?;
        if attempt + 1 >= self.max_attempts {
            self.failed.insert(index, error.to_string());
            Some(Requeue::Exhausted { index })
        } else {
            self.queue.push_front((index, attempt + 1));
            Some(Requeue::Retry {
                index,
                attempt: attempt + 1,
            })
        }
    }

    /// Records a non-retryable failure for outstanding lease `id` (the
    /// worker reported a cell error — the same cell fails the same way
    /// everywhere, so retrying is pointless). `None` when not
    /// outstanding (stale error — counted like a stale result).
    pub fn fail(&mut self, id: u64, error: &str) -> Option<usize> {
        match self.outstanding.remove(&id) {
            Some((index, _)) => {
                self.failed.insert(index, error.to_string());
                Some(index)
            }
            None => {
                self.stale += 1;
                None
            }
        }
    }

    /// `true` once every pending index is resolved or failed.
    pub fn all_resolved(&self) -> bool {
        self.resolved + self.failed.len() == self.total
    }

    /// Pending indices not yet resolved or failed.
    pub fn unresolved(&self) -> usize {
        self.total - self.resolved - self.failed.len()
    }

    /// Structured failures by pending index, in index order.
    pub fn failed(&self) -> &BTreeMap<usize, String> {
        &self.failed
    }

    /// Results discarded as stale so far.
    #[cfg(test)]
    pub fn stale(&self) -> u64 {
        self.stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_issue_in_pending_order_with_unique_ids() {
        let mut book = LeaseBook::new(3, 3);
        let a = book.issue().unwrap();
        let b = book.issue().unwrap();
        let c = book.issue().unwrap();
        assert_eq!((a.1, b.1, c.1), (0, 1, 2));
        assert_ne!(a.0, b.0);
        assert_eq!(book.issue(), None);
        assert_eq!(book.unresolved(), 3);
    }

    #[test]
    fn fresh_then_stale_delivery() {
        let mut book = LeaseBook::new(2, 3);
        let (id, index, _) = book.issue().unwrap();
        assert_eq!(book.complete(id), Delivery::Fresh(index));
        // The same lease answered twice: second delivery is stale.
        assert_eq!(book.complete(id), Delivery::Stale);
        assert_eq!(book.stale(), 1);
        assert!(!book.all_resolved());
    }

    #[test]
    fn result_after_reissue_is_stale_and_reissue_wins() {
        let mut book = LeaseBook::new(1, 3);
        let (first, _, _) = book.issue().unwrap();
        // Worker presumed dead: abandon and re-issue.
        assert_eq!(
            book.abandon(first, "heartbeat gap"),
            Some(Requeue::Retry {
                index: 0,
                attempt: 1
            })
        );
        let (second, index, attempt) = book.issue().unwrap();
        assert_eq!((index, attempt), (0, 1));
        // The "dead" worker's result limps in afterwards: stale.
        assert_eq!(book.complete(first), Delivery::Stale);
        assert_eq!(book.stale(), 1);
        // The re-issue's result is the one that counts.
        assert_eq!(book.complete(second), Delivery::Fresh(0));
        assert!(book.all_resolved());
    }

    #[test]
    fn attempts_cap_then_structured_failure() {
        let mut book = LeaseBook::new(2, 2);
        let (id, _, _) = book.issue().unwrap();
        assert!(matches!(
            book.abandon(id, "timeout"),
            Some(Requeue::Retry {
                index: 0,
                attempt: 1
            })
        ));
        let (id, _, _) = book.issue().unwrap();
        assert_eq!(
            book.abandon(id, "timeout again"),
            Some(Requeue::Exhausted { index: 0 })
        );
        assert_eq!(
            book.failed().get(&0).map(String::as_str),
            Some("timeout again")
        );
        assert_eq!(book.unresolved(), 1);
        // The second cell still completes; the campaign keeps going.
        let (id, index, _) = book.issue().unwrap();
        assert_eq!(index, 1);
        assert_eq!(book.complete(id), Delivery::Fresh(1));
        assert!(book.all_resolved());
    }

    #[test]
    fn abandoned_cell_requeues_at_the_front() {
        let mut book = LeaseBook::new(3, 3);
        let (id, _, _) = book.issue().unwrap(); // index 0 outstanding
        book.abandon(id, "crash");
        // The retry preempts indices 1 and 2.
        let (_, index, attempt) = book.issue().unwrap();
        assert_eq!((index, attempt), (0, 1));
    }

    #[test]
    fn cell_error_is_terminal_and_stale_errors_counted() {
        let mut book = LeaseBook::new(1, 3);
        let (id, _, _) = book.issue().unwrap();
        assert_eq!(book.fail(id, "unknown protocol"), Some(0));
        assert!(book.all_resolved());
        assert_eq!(book.fail(id, "echo"), None);
        assert_eq!(book.stale(), 1);
    }

    #[test]
    fn abandon_after_completion_is_a_no_op() {
        let mut book = LeaseBook::new(1, 3);
        let (id, _, _) = book.issue().unwrap();
        assert_eq!(book.complete(id), Delivery::Fresh(0));
        assert_eq!(book.abandon(id, "late timeout sweep"), None);
        assert!(book.all_resolved());
    }

    // Property-style suites for transport-induced reorderings: a TCP
    // fleet adds duplicate deliveries after reconnects, late results for
    // leases re-issued elsewhere, and arbitrary interleaving across
    // workers. All fixed-seed (SimRng), pinning the stale-result discard.
    mod transport_reorderings {
        use super::*;
        use synran_sim::SimRng;

        #[test]
        fn out_of_order_resolution_across_two_workers_is_all_fresh() {
            // Worker A holds even indices, worker B odd; B's results all
            // land before A's. Every delivery is fresh — order across
            // workers never manufactures staleness.
            let mut book = LeaseBook::new(6, 3);
            let leases: Vec<(u64, usize, u32)> = std::iter::from_fn(|| book.issue()).collect();
            let (b_half, a_half): (Vec<_>, Vec<_>) =
                leases.iter().partition(|(_, index, _)| index % 2 == 1);
            for (id, index, _) in b_half.iter().chain(a_half.iter().rev()) {
                assert_eq!(book.complete(*id), Delivery::Fresh(*index));
            }
            assert!(book.all_resolved());
            assert_eq!(book.stale(), 0);
        }

        #[test]
        fn duplicate_results_after_a_reconnect_are_discarded() {
            // An agent disconnects mid-cell, rejoins, and — having never
            // heard it was superseded — replays its result for every
            // lease it ever held. Only the live lease's delivery counts.
            let mut book = LeaseBook::new(3, 4);
            let mut replay_buffer = Vec::new();
            for _ in 0..3 {
                let (id, index, _) = book.issue().unwrap();
                replay_buffer.push((id, index));
            }
            // Index 1's worker drops; the cell is re-issued to another.
            let dropped = replay_buffer[1].0;
            assert!(matches!(
                book.abandon(dropped, "connection dropped"),
                Some(Requeue::Retry {
                    index: 1,
                    attempt: 1
                })
            ));
            let (reissued, index, attempt) = book.issue().unwrap();
            assert_eq!((index, attempt), (1, 1));
            assert_eq!(book.complete(reissued), Delivery::Fresh(1));
            // The rejoined agent replays everything, twice.
            let mut stale_seen = 0;
            for _ in 0..2 {
                for &(id, index) in &replay_buffer {
                    match book.complete(id) {
                        Delivery::Fresh(fresh) => assert_eq!(fresh, index),
                        Delivery::Stale => stale_seen += 1,
                    }
                }
            }
            // First pass: 0 and 2 fresh, dropped id stale. Second pass:
            // all three stale.
            assert_eq!(stale_seen, 4);
            assert_eq!(book.stale(), 4);
            assert!(book.all_resolved());
        }

        /// Shuffle `items` in place with a fixed-seed SimRng
        /// (Fisher–Yates on `next_u64`).
        fn shuffle<T>(items: &mut [T], rng: &mut SimRng) {
            for i in (1..items.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                items.swap(i, j);
            }
        }

        #[test]
        fn random_delivery_orders_resolve_every_index_exactly_once() {
            for seed in 0..16u64 {
                let mut rng = SimRng::new(0x1ea5_e000 + seed);
                let total = 4 + (rng.next_u64() % 8) as usize;
                let mut book = LeaseBook::new(total, 3);
                let mut leases: Vec<(u64, usize, u32)> =
                    std::iter::from_fn(|| book.issue()).collect();
                shuffle(&mut leases, &mut rng);
                // Interleave each fresh delivery with a duplicate of an
                // already-delivered lease: the duplicate is always stale.
                let mut delivered: Vec<(u64, usize)> = Vec::new();
                for (id, index, _) in leases {
                    assert_eq!(book.complete(id), Delivery::Fresh(index), "seed {seed}");
                    delivered.push((id, index));
                    let pick = delivered[(rng.next_u64() as usize) % delivered.len()].0;
                    assert_eq!(book.complete(pick), Delivery::Stale, "seed {seed}");
                }
                assert!(book.all_resolved(), "seed {seed}");
                assert_eq!(book.stale(), total as u64, "seed {seed}");
            }
        }

        #[test]
        fn random_crash_recover_schedules_keep_the_ledger_consistent() {
            // A randomized two-worker schedule of issue / fresh-complete /
            // abandon-and-replay / duplicate-complete. Model invariants:
            // each index resolves or fails exactly once, stale count
            // matches the model's discard count, and the book always
            // drains to all_resolved.
            for seed in 0..24u64 {
                let mut rng = SimRng::new(0xdead_0000 + seed);
                let total = 3 + (rng.next_u64() % 6) as usize;
                let max_attempts = 2 + (rng.next_u64() % 3) as u32;
                let mut book = LeaseBook::new(total, max_attempts);
                let mut live: Vec<(u64, usize)> = Vec::new(); // outstanding
                let mut dead_ids: Vec<u64> = Vec::new(); // superseded or resolved
                let mut resolved = 0usize;
                let mut failed = 0usize;
                let mut stale_expected = 0u64;
                for _ in 0..200 {
                    match rng.next_u64() % 4 {
                        0 => {
                            if let Some((id, index, _)) = book.issue() {
                                live.push((id, index));
                            }
                        }
                        1 => {
                            if live.is_empty() {
                                continue;
                            }
                            let pick = (rng.next_u64() as usize) % live.len();
                            let (id, index) = live.swap_remove(pick);
                            assert_eq!(book.complete(id), Delivery::Fresh(index), "seed {seed}");
                            resolved += 1;
                            dead_ids.push(id);
                        }
                        2 => {
                            if live.is_empty() {
                                continue;
                            }
                            let pick = (rng.next_u64() as usize) % live.len();
                            let (id, _) = live.swap_remove(pick);
                            match book.abandon(id, "transport died") {
                                Some(Requeue::Retry { .. }) => {}
                                Some(Requeue::Exhausted { .. }) => failed += 1,
                                None => panic!("live lease must abandon (seed {seed})"),
                            }
                            dead_ids.push(id);
                        }
                        _ => {
                            // A rejoined worker replays a superseded id.
                            if dead_ids.is_empty() {
                                continue;
                            }
                            let id = dead_ids[(rng.next_u64() as usize) % dead_ids.len()];
                            assert_eq!(book.complete(id), Delivery::Stale, "seed {seed}");
                            stale_expected += 1;
                        }
                    }
                    assert_eq!(book.unresolved(), total - resolved - failed, "seed {seed}");
                    assert_eq!(book.stale(), stale_expected, "seed {seed}");
                }
                // Drain: complete everything still live or queued.
                for (id, index) in live.drain(..) {
                    assert_eq!(book.complete(id), Delivery::Fresh(index), "seed {seed}");
                    resolved += 1;
                }
                while let Some((id, index, _)) = book.issue() {
                    assert_eq!(book.complete(id), Delivery::Fresh(index), "seed {seed}");
                    resolved += 1;
                }
                assert!(book.all_resolved(), "seed {seed}");
                assert_eq!(resolved + failed, total, "seed {seed}");
                assert_eq!(book.failed().len(), failed, "seed {seed}");
            }
        }
    }
}
