//! Lease bookkeeping: which pending cells are queued, outstanding, or
//! resolved, how many attempts each has burned, and which results are
//! stale (answering a lease that was already re-issued).
//!
//! Pure state machine — no I/O, no clocks — so every retry edge case is
//! unit-testable without processes.

use std::collections::{BTreeMap, HashMap, VecDeque};

/// What [`LeaseBook::complete`] says about an arriving result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Delivery {
    /// The lease was outstanding; the result resolves this pending index.
    Fresh(usize),
    /// The lease was already resolved, abandoned, or never issued —
    /// discard the result (counted in `fleet.stale_results`).
    Stale,
}

/// What [`LeaseBook::abandon`] decided about a failed lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Requeue {
    /// The cell goes back on the queue for attempt `attempt`.
    Retry {
        /// The pending index requeued.
        index: usize,
        /// The next attempt number.
        attempt: u32,
    },
    /// Attempts exhausted: the cell is recorded as a structured failure.
    Exhausted {
        /// The pending index that failed permanently.
        index: usize,
    },
}

/// The supervisor's ledger over pending indices `0..total`.
#[derive(Debug)]
pub(crate) struct LeaseBook {
    next_id: u64,
    max_attempts: u32,
    /// `(pending index, attempt)` awaiting a worker, front first.
    queue: VecDeque<(usize, u32)>,
    /// Lease id → `(pending index, attempt)` currently on a worker.
    outstanding: HashMap<u64, (usize, u32)>,
    /// Pending indices resolved with a fresh result.
    resolved: usize,
    total: usize,
    /// Pending index → error text, for cells that exhausted attempts or
    /// failed non-retryably.
    failed: BTreeMap<usize, String>,
    /// Results discarded because their lease was superseded.
    stale: u64,
}

impl LeaseBook {
    /// A book over pending indices `0..total`, each allowed
    /// `max_attempts` attempts (floored at 1).
    pub fn new(total: usize, max_attempts: u32) -> LeaseBook {
        LeaseBook {
            next_id: 0,
            max_attempts: max_attempts.max(1),
            queue: (0..total).map(|i| (i, 0)).collect(),
            outstanding: HashMap::new(),
            resolved: 0,
            total,
            failed: BTreeMap::new(),
            stale: 0,
        }
    }

    /// Issues the next queued lease as `(id, index, attempt)`, or `None`
    /// when the queue is empty.
    pub fn issue(&mut self) -> Option<(u64, usize, u32)> {
        let (index, attempt) = self.queue.pop_front()?;
        let id = self.next_id;
        self.next_id += 1;
        self.outstanding.insert(id, (index, attempt));
        Some((id, index, attempt))
    }

    /// Records a result arriving for lease `id`.
    pub fn complete(&mut self, id: u64) -> Delivery {
        match self.outstanding.remove(&id) {
            Some((index, _)) => {
                self.resolved += 1;
                Delivery::Fresh(index)
            }
            None => {
                self.stale += 1;
                Delivery::Stale
            }
        }
    }

    /// Abandons outstanding lease `id` (worker died, hung, or timed
    /// out): requeues the cell at the front — the retried cell is the
    /// flush cursor's likely blocker — or, when attempts are exhausted,
    /// records `error` as the cell's structured failure. `None` when the
    /// lease was not outstanding (already resolved — nothing to do).
    pub fn abandon(&mut self, id: u64, error: &str) -> Option<Requeue> {
        let (index, attempt) = self.outstanding.remove(&id)?;
        if attempt + 1 >= self.max_attempts {
            self.failed.insert(index, error.to_string());
            Some(Requeue::Exhausted { index })
        } else {
            self.queue.push_front((index, attempt + 1));
            Some(Requeue::Retry {
                index,
                attempt: attempt + 1,
            })
        }
    }

    /// Records a non-retryable failure for outstanding lease `id` (the
    /// worker reported a cell error — the same cell fails the same way
    /// everywhere, so retrying is pointless). `None` when not
    /// outstanding (stale error — counted like a stale result).
    pub fn fail(&mut self, id: u64, error: &str) -> Option<usize> {
        match self.outstanding.remove(&id) {
            Some((index, _)) => {
                self.failed.insert(index, error.to_string());
                Some(index)
            }
            None => {
                self.stale += 1;
                None
            }
        }
    }

    /// `true` once every pending index is resolved or failed.
    pub fn all_resolved(&self) -> bool {
        self.resolved + self.failed.len() == self.total
    }

    /// Pending indices not yet resolved or failed.
    pub fn unresolved(&self) -> usize {
        self.total - self.resolved - self.failed.len()
    }

    /// Structured failures by pending index, in index order.
    pub fn failed(&self) -> &BTreeMap<usize, String> {
        &self.failed
    }

    /// Results discarded as stale so far.
    #[cfg(test)]
    pub fn stale(&self) -> u64 {
        self.stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_issue_in_pending_order_with_unique_ids() {
        let mut book = LeaseBook::new(3, 3);
        let a = book.issue().unwrap();
        let b = book.issue().unwrap();
        let c = book.issue().unwrap();
        assert_eq!((a.1, b.1, c.1), (0, 1, 2));
        assert_ne!(a.0, b.0);
        assert_eq!(book.issue(), None);
        assert_eq!(book.unresolved(), 3);
    }

    #[test]
    fn fresh_then_stale_delivery() {
        let mut book = LeaseBook::new(2, 3);
        let (id, index, _) = book.issue().unwrap();
        assert_eq!(book.complete(id), Delivery::Fresh(index));
        // The same lease answered twice: second delivery is stale.
        assert_eq!(book.complete(id), Delivery::Stale);
        assert_eq!(book.stale(), 1);
        assert!(!book.all_resolved());
    }

    #[test]
    fn result_after_reissue_is_stale_and_reissue_wins() {
        let mut book = LeaseBook::new(1, 3);
        let (first, _, _) = book.issue().unwrap();
        // Worker presumed dead: abandon and re-issue.
        assert_eq!(
            book.abandon(first, "heartbeat gap"),
            Some(Requeue::Retry {
                index: 0,
                attempt: 1
            })
        );
        let (second, index, attempt) = book.issue().unwrap();
        assert_eq!((index, attempt), (0, 1));
        // The "dead" worker's result limps in afterwards: stale.
        assert_eq!(book.complete(first), Delivery::Stale);
        assert_eq!(book.stale(), 1);
        // The re-issue's result is the one that counts.
        assert_eq!(book.complete(second), Delivery::Fresh(0));
        assert!(book.all_resolved());
    }

    #[test]
    fn attempts_cap_then_structured_failure() {
        let mut book = LeaseBook::new(2, 2);
        let (id, _, _) = book.issue().unwrap();
        assert!(matches!(
            book.abandon(id, "timeout"),
            Some(Requeue::Retry {
                index: 0,
                attempt: 1
            })
        ));
        let (id, _, _) = book.issue().unwrap();
        assert_eq!(
            book.abandon(id, "timeout again"),
            Some(Requeue::Exhausted { index: 0 })
        );
        assert_eq!(
            book.failed().get(&0).map(String::as_str),
            Some("timeout again")
        );
        assert_eq!(book.unresolved(), 1);
        // The second cell still completes; the campaign keeps going.
        let (id, index, _) = book.issue().unwrap();
        assert_eq!(index, 1);
        assert_eq!(book.complete(id), Delivery::Fresh(1));
        assert!(book.all_resolved());
    }

    #[test]
    fn abandoned_cell_requeues_at_the_front() {
        let mut book = LeaseBook::new(3, 3);
        let (id, _, _) = book.issue().unwrap(); // index 0 outstanding
        book.abandon(id, "crash");
        // The retry preempts indices 1 and 2.
        let (_, index, attempt) = book.issue().unwrap();
        assert_eq!((index, attempt), (0, 1));
    }

    #[test]
    fn cell_error_is_terminal_and_stale_errors_counted() {
        let mut book = LeaseBook::new(1, 3);
        let (id, _, _) = book.issue().unwrap();
        assert_eq!(book.fail(id, "unknown protocol"), Some(0));
        assert!(book.all_resolved());
        assert_eq!(book.fail(id, "echo"), None);
        assert_eq!(book.stale(), 1);
    }

    #[test]
    fn abandon_after_completion_is_a_no_op() {
        let mut book = LeaseBook::new(1, 3);
        let (id, _, _) = book.issue().unwrap();
        assert_eq!(book.complete(id), Delivery::Fresh(0));
        assert_eq!(book.abandon(id, "late timeout sweep"), None);
        assert!(book.all_resolved());
    }
}
