//! Multi-worker campaign execution: a supervisor that shards a cell
//! list into leases and drives workers over pluggable **transports** —
//! subprocess stdin/stdout pipes or TCP connections to long-lived
//! `campaign agent` processes on other machines — with heartbeats,
//! per-cell timeouts, and crash-tolerant retry.
//!
//! # Parity contract
//!
//! The supervisor owns the journal and cache exactly as
//! [`Engine`](crate::Engine) does
//! and produces **byte-identical journals and stdout**: results arriving
//! out of order are buffered and flushed in *pending order* — the first
//! index per distinct un-cached hash in cell order — which is exactly the
//! journal line order the in-process engine's wave fold produces (waves
//! append in cell order within each wave, and waves partition the pending
//! list in order, so the overall order never depends on wave size or
//! scheduling). Stdout parity follows for free: the preset renderers are
//! pure functions of the results vector. The transport is invisible in
//! this contract: pipes, sockets, and any mix produce the same bytes.
//!
//! # Lease / heartbeat / retry state machine
//!
//! Each pending cell becomes a [`Lease`](proto::Lease). A lease is
//! *queued* → *outstanding* (sent to a worker) → *resolved* (result
//! journaled) or *abandoned* (worker died, disconnected, hung past the
//! heartbeat timeout, or overran the per-cell timeout — the transport is
//! closed and the lease requeued with `attempt + 1`). After
//! `max_attempts` failed attempts the cell is recorded as a structured
//! failure and the campaign keeps going; the run then errors *after* all
//! other cells completed, naming the first failed cell by cell order. A
//! result arriving for a lease that was already re-issued — e.g. from a
//! stalled agent that rejoins after its slot reconnected — is discarded
//! and counted in `fleet.stale_results`.
//!
//! # Network transport
//!
//! `--workers addr1,addr2[,local:N]` builds the slot list
//! ([`parse_workers`]); each TCP slot connects to a `synran campaign
//! agent` and runs a versioned, token-authenticated handshake before the
//! first lease. Disconnects are exactly crashed workers: abandon,
//! half-close, exponential-backoff *reconnect* to the same address
//! (`fleet.net.reconnects`), and stale-result discard on rejoin. Socket
//! input passes through a hardened frame reader (bounded line length,
//! forgiving malformed-line classification, a structured protocol-error
//! retirement after persistent garbage — see [`frame`]).
//!
//! Degradation is graceful end to end: a single local slot never
//! spawns, a spawn failure before any worker came up falls back to the
//! in-process engine, and if every worker slot dies permanently the
//! supervisor finishes the remaining leases inline.
//!
//! All `fleet.*` (including `fleet.net.*`) telemetry counters are
//! observe-only: journals, results, and stdout are byte-identical with
//! telemetry on or off.

mod agent;
mod frame;
mod lease;
mod net;
mod proto;
mod state;
mod supervisor;
mod worker;

pub use agent::{agent_main, AgentConfig};
pub use net::{parse_workers, SlotSpec};
pub use state::{fleet_sidecar_path, scan_fleet_sidecar, FleetStatus, FleetWorkerStatus};
pub use supervisor::{Fleet, FleetConfig};
pub use worker::worker_main;
