//! Multi-process campaign execution: a supervisor that shards a cell
//! list into leases and drives worker **subprocesses** over a JSONL
//! stdin/stdout protocol, with heartbeats, per-cell timeouts, and
//! crash-tolerant retry.
//!
//! # Parity contract
//!
//! The supervisor owns the journal and cache exactly as
//! [`Engine`](crate::Engine) does
//! and produces **byte-identical journals and stdout**: results arriving
//! out of order are buffered and flushed in *pending order* — the first
//! index per distinct un-cached hash in cell order — which is exactly the
//! journal line order the in-process engine's wave fold produces (waves
//! append in cell order within each wave, and waves partition the pending
//! list in order, so the overall order never depends on wave size or
//! scheduling). Stdout parity follows for free: the preset renderers are
//! pure functions of the results vector.
//!
//! # Lease / heartbeat / retry state machine
//!
//! Each pending cell becomes a [`Lease`](proto::Lease). A lease is
//! *queued* → *outstanding* (sent to a worker) → *resolved* (result
//! journaled) or *abandoned* (worker died, hung past the heartbeat
//! timeout, or overran the per-cell timeout — the worker is killed and
//! the lease requeued with `attempt + 1`). After `max_attempts` failed
//! attempts the cell is recorded as a structured failure and the campaign
//! keeps going; the run then errors *after* all other cells completed,
//! naming the first failed cell by cell order. A result arriving for a
//! lease that was already re-issued is discarded and counted in
//! `fleet.stale_results`.
//!
//! Degradation is graceful end to end: `--procs 1` never spawns, a spawn
//! failure before any lease falls back to the in-process engine, and if
//! every worker slot dies permanently the supervisor finishes the
//! remaining leases inline.
//!
//! All `fleet.*` telemetry counters are observe-only: journals, results,
//! and stdout are byte-identical with telemetry on or off.

mod lease;
mod proto;
mod state;
mod supervisor;
mod worker;

pub use state::{fleet_sidecar_path, scan_fleet_sidecar, FleetStatus};
pub use supervisor::{Fleet, FleetConfig};
pub use worker::worker_main;
