//! Opt-in live progress for campaign runs.
//!
//! The engine's wave fold is deterministic and serial; a [`ProgressSink`]
//! hooks into it to emit a [`Heartbeat`] every N completed cells. The
//! hook is strictly **observe-only**: heartbeats go to stderr (or a test
//! buffer), never into results, journals, or stdout, and attaching one
//! cannot change a single byte of campaign output — pinned by
//! `progress_is_observe_only` in the engine tests.

use synran_sim::parallel::PoolStats;

/// One progress sample, emitted from the engine's serial fold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Heartbeat {
    /// Cells resolved so far in this run (executed + cache hits).
    pub done: usize,
    /// Cells in the run.
    pub total: usize,
    /// Cache misses executed so far in this run.
    pub executed: usize,
    /// Cells answered from the cache so far in this run.
    pub cache_hits: usize,
    /// Resolution rate since the run started, cells per second.
    pub cells_per_sec: f64,
    /// Naive remaining-time estimate, seconds (`0.0` when done or when
    /// the rate is still unmeasurable).
    pub eta_secs: f64,
    /// The global worker pool's cumulative scheduling counters.
    pub pool: PoolStats,
}

impl Heartbeat {
    /// Percent complete, `0.0..=100.0` (100 for an empty run).
    #[must_use]
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            return 100.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.done as f64 * 100.0 / self.total as f64
        }
    }

    /// The standard one-line rendering used by [`StderrProgress`].
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "[{:5.1}%] {}/{} cells ({} run, {} cached) | {:.1} cells/s | eta {:.0}s | pool {} reused / {} spawned",
            self.percent(),
            self.done,
            self.total,
            self.executed,
            self.cache_hits,
            self.cells_per_sec,
            self.eta_secs,
            self.pool.reused,
            self.pool.spawned,
        )
    }
}

/// Where heartbeats go. `Debug` is required so an engine holding a boxed
/// sink stays debuggable.
pub trait ProgressSink: std::fmt::Debug {
    /// Receives one heartbeat.
    fn heartbeat(&mut self, beat: &Heartbeat);
}

/// The production sink: one [`Heartbeat::render`] line per heartbeat on
/// stderr, leaving stdout (tables, reports) untouched.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn heartbeat(&mut self, beat: &Heartbeat) {
        eprintln!("{}", beat.render());
    }
}

/// A sink that keeps every heartbeat in memory (tests).
#[derive(Debug, Default)]
pub struct MemoryProgress {
    /// Heartbeats in emission order.
    pub beats: Vec<Heartbeat>,
}

impl ProgressSink for MemoryProgress {
    fn heartbeat(&mut self, beat: &Heartbeat) {
        self.beats.push(*beat);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_and_render() {
        let beat = Heartbeat {
            done: 3,
            total: 12,
            executed: 2,
            cache_hits: 1,
            cells_per_sec: 150.0,
            eta_secs: 0.06,
            pool: PoolStats::default(),
        };
        assert!((beat.percent() - 25.0).abs() < 1e-9);
        let line = beat.render();
        assert!(line.contains("3/12 cells"));
        assert!(line.contains("2 run, 1 cached"));

        let empty = Heartbeat {
            done: 0,
            total: 0,
            executed: 0,
            cache_hits: 0,
            cells_per_sec: 0.0,
            eta_secs: 0.0,
            pool: PoolStats::default(),
        };
        assert!((empty.percent() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn memory_sink_records() {
        let mut sink = MemoryProgress::default();
        let beat = Heartbeat {
            done: 1,
            total: 2,
            executed: 1,
            cache_hits: 0,
            cells_per_sec: 1.0,
            eta_secs: 1.0,
            pool: PoolStats::default(),
        };
        sink.heartbeat(&beat);
        assert_eq!(sink.beats.len(), 1);
        assert_eq!(sink.beats[0].done, 1);
    }
}
