//! The sharded campaign scheduler.
//!
//! [`Engine::run_cells`] partitions a campaign's cell list across worker
//! threads via [`synran_sim::parallel`] and folds the results **in cell
//! order**, so the merged output is byte-identical at every thread count —
//! the same contract the fork-evaluation engine and the batch runner keep.
//!
//! Execution proceeds in *waves* of `threads × 4` cells: each wave is
//! evaluated in parallel, then appended to the journal in cell order
//! before the next wave starts. A killed campaign therefore loses at most
//! one in-flight wave, and the journal's line order is itself a pure
//! function of the cell list (never of scheduling).
//!
//! Waves dispatch onto the persistent worker pool in
//! [`synran_sim::parallel`]: the helper threads are spawned by the first
//! wave and re-used by every later wave (and by any nested fan-out a cell
//! performs — nested dispatches fall back inline, deterministically), so
//! a thousand-wave campaign pays thread-spawn cost exactly once.
//!
//! Cells already present in the cache — from this campaign's journal, or
//! imported from another's — are skipped and their recorded results
//! spliced into the fold.

use std::path::Path;

use synran_sim::{parallel, Telemetry};

use crate::cell::{Cell, CellResult};
use crate::journal::{load_cache, CellCache, Journal};
use crate::registry::run_cell;
use crate::LabError;

/// The sharded, cache-aware campaign executor.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    telemetry: Telemetry,
    cache: CellCache,
    journal: Option<Journal>,
    executed: usize,
    cache_hits: usize,
}

impl Engine {
    /// An engine with `threads` workers (0 = all cores) recording into
    /// `telemetry`, with an empty cache and no journal.
    #[must_use]
    pub fn new(threads: usize, telemetry: Telemetry) -> Engine {
        Engine {
            threads,
            telemetry,
            cache: CellCache::new(),
            journal: None,
            executed: 0,
            cache_hits: 0,
        }
    }

    /// Attaches an open journal and merges the entries it already holds
    /// into the cache (the resume path).
    #[must_use]
    pub fn with_journal(mut self, journal: Journal, cache: CellCache) -> Engine {
        self.journal = Some(journal);
        self.cache.extend(cache);
        self
    }

    /// Imports another campaign's journal read-only for cross-campaign
    /// dedup. Returns the number of entries merged.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if `path` exists but cannot be read.
    pub fn import_cache(&mut self, path: &Path) -> Result<usize, LabError> {
        let imported = load_cache(path)?;
        let count = imported.len();
        self.cache.extend(imported);
        Ok(count)
    }

    /// The telemetry handle every cell execution records into.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Cells actually executed so far (cache misses).
    #[must_use]
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Cells answered from the cache so far.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Runs a campaign's cell list and returns its results in cell order.
    ///
    /// Cached cells are skipped; fresh cells execute on the worker pool in
    /// waves and are journaled (in cell order) as each wave completes.
    /// Duplicate cells within the list execute once.
    ///
    /// # Errors
    ///
    /// Returns the first failing cell's error **by cell order** (the
    /// deterministic-error contract of
    /// [`try_par_map`](synran_sim::parallel::try_par_map)), or an I/O
    /// error from the journal.
    pub fn run_cells(&mut self, cells: &[Cell]) -> Result<Vec<CellResult>, LabError> {
        let hashes: Vec<String> = cells.iter().map(Cell::content_hash).collect();
        let mut results: Vec<Option<CellResult>> =
            hashes.iter().map(|h| self.cache.get(h).cloned()).collect();
        self.cache_hits += results.iter().filter(|r| r.is_some()).count();

        // First index per distinct pending hash, in cell order (duplicates
        // within the list run once and share the result).
        let mut pending: Vec<usize> = Vec::new();
        for (i, result) in results.iter().enumerate() {
            if result.is_none() && !pending.iter().any(|&p| hashes[p] == hashes[i]) {
                pending.push(i);
            }
        }

        let workers = parallel::resolve_threads(self.threads).max(1);
        for wave in pending.chunks(workers * 4) {
            let outs = parallel::try_par_map_in(&self.telemetry, self.threads, wave.len(), |k| {
                run_cell(&cells[wave[k]], &self.telemetry)
            })?;
            for (&i, result) in wave.iter().zip(outs) {
                if let Some(journal) = &mut self.journal {
                    journal.append(&cells[i], &result)?;
                }
                self.cache.insert(hashes[i].clone(), result);
                self.executed += 1;
            }
            // Splice the wave (and any in-list duplicates) from the cache.
            for (i, slot) in results.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = self.cache.get(&hashes[i]).cloned();
                }
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every cell executed or cached"))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synran-lab-engine-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn grid() -> Vec<Cell> {
        let mut cells = Vec::new();
        for n in [8usize, 10, 12] {
            for seed in [1u64, 2] {
                let mut cell = Cell::new("synran", "balancer", n);
                cell.runs = 3;
                cell.seed = seed;
                cell.max_rounds = 100_000;
                cells.push(cell);
            }
        }
        cells
    }

    #[test]
    fn results_are_identical_at_every_thread_count() {
        let cells = grid();
        let baseline = Engine::new(1, Telemetry::off()).run_cells(&cells).unwrap();
        for threads in [2, 4, 8] {
            let results = Engine::new(threads, Telemetry::off())
                .run_cells(&cells)
                .unwrap();
            assert_eq!(results, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn cache_short_circuits_and_duplicates_run_once() {
        let mut cells = grid();
        cells.push(cells[0].clone()); // in-list duplicate
        let mut engine = Engine::new(2, Telemetry::off());
        let first = engine.run_cells(&cells).unwrap();
        assert_eq!(engine.executed(), cells.len() - 1, "duplicate ran once");
        assert_eq!(first[0], *first.last().unwrap());

        let again = engine.run_cells(&cells).unwrap();
        assert_eq!(again, first);
        assert_eq!(engine.executed(), cells.len() - 1, "all cached on rerun");
        assert_eq!(engine.cache_hits(), cells.len());
    }

    #[test]
    fn journal_backs_the_cache_across_engines() {
        let path = tmpdir("cache").join("demo.journal.jsonl");
        let cells = grid();
        let (journal, cache) = Journal::open(&path).unwrap();
        let mut engine = Engine::new(1, Telemetry::off()).with_journal(journal, cache);
        let baseline = engine.run_cells(&cells).unwrap();
        assert_eq!(engine.executed(), cells.len());
        drop(engine);

        let (journal, cache) = Journal::open(&path).unwrap();
        let mut resumed = Engine::new(4, Telemetry::off()).with_journal(journal, cache);
        let results = resumed.run_cells(&cells).unwrap();
        assert_eq!(results, baseline);
        assert_eq!(resumed.executed(), 0, "fully warm journal");

        // Cross-campaign dedup: a different engine imports the journal.
        let mut importer = Engine::new(1, Telemetry::off());
        assert_eq!(importer.import_cache(&path).unwrap(), cells.len());
        importer.run_cells(&cells[..2]).unwrap();
        assert_eq!(importer.executed(), 0);
    }

    #[test]
    fn error_is_deterministic_by_cell_order() {
        let mut cells = grid();
        cells[1].protocol = "bogus".into();
        cells[4].protocol = "bogus".into();
        for threads in [1, 4] {
            let err = Engine::new(threads, Telemetry::off())
                .run_cells(&cells)
                .unwrap_err();
            assert!(
                err.to_string().contains("bogus"),
                "threads {threads}: {err}"
            );
        }
    }
}
