//! The sharded campaign scheduler.
//!
//! [`Engine::run_cells`] partitions a campaign's cell list across worker
//! threads via [`synran_sim::parallel`] and folds the results **in cell
//! order**, so the merged output is byte-identical at every thread count —
//! the same contract the fork-evaluation engine and the batch runner keep.
//!
//! Execution proceeds in *waves* of `threads × 4` cells: each wave is
//! evaluated in parallel, then appended to the journal in cell order
//! before the next wave starts. A killed campaign therefore loses at most
//! one in-flight wave, and the journal's line order is itself a pure
//! function of the cell list (never of scheduling).
//!
//! Waves dispatch onto the persistent worker pool in
//! [`synran_sim::parallel`]: the helper threads are spawned by the first
//! wave and re-used by every later wave (and by any nested fan-out a cell
//! performs — nested dispatches fall back inline, deterministically), so
//! a thousand-wave campaign pays thread-spawn cost exactly once.
//!
//! Cells already present in the cache — from this campaign's journal, or
//! imported from another's — are skipped and their recorded results
//! spliced into the fold.

use std::path::Path;
use std::time::Instant;

use synran_sim::{parallel, Telemetry};

use crate::cell::{Cell, CellResult};
use crate::journal::{load_cache, CellCache, Journal};
use crate::progress::{Heartbeat, ProgressSink};
use crate::registry::run_cell;
use crate::LabError;

/// An attached progress sink plus its emission cadence.
#[derive(Debug)]
struct Progress {
    every: usize,
    sink: Box<dyn ProgressSink>,
}

/// Anything that can execute a campaign's cell list: the in-process
/// [`Engine`], or the multi-process [`Fleet`](crate::fleet::Fleet) that
/// shards the same list across worker subprocesses. Presets render
/// against this trait, so a campaign's stdout is a pure function of the
/// results whichever runner produced them.
pub trait CellRunner {
    /// Runs the cells and returns their results in cell order. Same
    /// contract as [`Engine::run_cells`]: cached cells are spliced in,
    /// duplicates execute once, and the first failing cell's error is
    /// returned **by cell order**.
    ///
    /// # Errors
    ///
    /// Returns the first failing cell's error by cell order, or an I/O
    /// error from the journal.
    fn run_cells(&mut self, cells: &[Cell]) -> Result<Vec<CellResult>, LabError>;

    /// The telemetry handle the runner records into.
    fn telemetry(&self) -> &Telemetry;

    /// Cells actually executed so far (cache misses).
    fn executed(&self) -> usize;

    /// Cells answered from the cache so far.
    fn cache_hits(&self) -> usize;
}

impl CellRunner for Engine {
    fn run_cells(&mut self, cells: &[Cell]) -> Result<Vec<CellResult>, LabError> {
        Engine::run_cells(self, cells)
    }

    fn telemetry(&self) -> &Telemetry {
        Engine::telemetry(self)
    }

    fn executed(&self) -> usize {
        Engine::executed(self)
    }

    fn cache_hits(&self) -> usize {
        Engine::cache_hits(self)
    }
}

/// First index per distinct un-cached hash, in cell order — the canonical
/// execution (and journal) order every runner must follow. Duplicates
/// within the list run once and share the result.
pub(crate) fn pending_order(hashes: &[String], results: &[Option<CellResult>]) -> Vec<usize> {
    let mut pending: Vec<usize> = Vec::new();
    for (i, result) in results.iter().enumerate() {
        if result.is_none() && !pending.iter().any(|&p| hashes[p] == hashes[i]) {
            pending.push(i);
        }
    }
    pending
}

/// The sharded, cache-aware campaign executor.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    telemetry: Telemetry,
    cache: CellCache,
    journal: Option<Journal>,
    progress: Option<Progress>,
    executed: usize,
    cache_hits: usize,
}

impl Engine {
    /// An engine with `threads` workers (0 = all cores) recording into
    /// `telemetry`, with an empty cache and no journal.
    #[must_use]
    pub fn new(threads: usize, telemetry: Telemetry) -> Engine {
        Engine {
            threads,
            telemetry,
            cache: CellCache::new(),
            journal: None,
            progress: None,
            executed: 0,
            cache_hits: 0,
        }
    }

    /// Attaches a progress sink: a [`Heartbeat`] is emitted from the
    /// serial fold every `every` completed cells (and once at the end of
    /// each run). Observe-only — attaching a sink never changes results,
    /// journal bytes, or stdout (pinned by `progress_is_observe_only`).
    #[must_use]
    pub fn with_progress(mut self, every: usize, sink: Box<dyn ProgressSink>) -> Engine {
        self.progress = Some(Progress {
            every: every.max(1),
            sink,
        });
        self
    }

    /// Attaches an open journal and merges the entries it already holds
    /// into the cache (the resume path).
    #[must_use]
    pub fn with_journal(mut self, journal: Journal, cache: CellCache) -> Engine {
        self.journal = Some(journal);
        self.cache.extend(cache);
        self
    }

    /// Imports another campaign's journal read-only for cross-campaign
    /// dedup. Returns the number of entries merged.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if `path` exists but cannot be read.
    pub fn import_cache(&mut self, path: &Path) -> Result<usize, LabError> {
        let imported = load_cache(path)?;
        let count = imported.len();
        self.cache.extend(imported);
        Ok(count)
    }

    /// The telemetry handle every cell execution records into.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Cells actually executed so far (cache misses).
    #[must_use]
    pub fn executed(&self) -> usize {
        self.executed
    }

    /// Cells answered from the cache so far.
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Runs a campaign's cell list and returns its results in cell order.
    ///
    /// Cached cells are skipped; fresh cells execute on the worker pool in
    /// waves and are journaled (in cell order) as each wave completes.
    /// Duplicate cells within the list execute once.
    ///
    /// # Errors
    ///
    /// Returns the first failing cell's error **by cell order** (the
    /// deterministic-error contract of
    /// [`try_par_map`](synran_sim::parallel::try_par_map)), or an I/O
    /// error from the journal.
    pub fn run_cells(&mut self, cells: &[Cell]) -> Result<Vec<CellResult>, LabError> {
        let start = Instant::now();
        let hashes: Vec<String> = cells.iter().map(Cell::content_hash).collect();
        let mut results: Vec<Option<CellResult>> =
            hashes.iter().map(|h| self.cache.get(h).cloned()).collect();
        let warm = results.iter().filter(|r| r.is_some()).count();
        self.cache_hits += warm;

        let pending = pending_order(&hashes, &results);

        let mut run_executed = 0usize;
        let mut last_beat = 0usize;
        self.emit_heartbeat(warm, cells.len(), 0, warm, start);

        let workers = parallel::resolve_threads(self.threads).max(1);
        for wave in pending.chunks(workers * 4) {
            let outs = parallel::try_par_map_in(&self.telemetry, self.threads, wave.len(), |k| {
                run_cell(&cells[wave[k]], &self.telemetry)
            })?;
            for (&i, result) in wave.iter().zip(outs) {
                self.record(&cells[i], &hashes[i], result)?;
                run_executed += 1;
            }
            // Splice the wave (and any in-list duplicates) from the cache.
            for (i, slot) in results.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = self.cache.get(&hashes[i]).cloned();
                }
            }
            let done = results.iter().filter(|r| r.is_some()).count();
            if let Some(progress) = &self.progress {
                if done - last_beat >= progress.every || done == cells.len() {
                    last_beat = done;
                    self.emit_heartbeat(done, cells.len(), run_executed, warm, start);
                }
            }
        }

        self.finish_counters(cells.len(), run_executed, warm, start);

        Ok(results
            .into_iter()
            .map(|r| r.expect("every cell executed or cached"))
            .collect())
    }

    /// A cached result by content hash, cloned out of the cache.
    pub(crate) fn cache_get(&self, hash: &str) -> Option<CellResult> {
        self.cache.get(hash).cloned()
    }

    /// Accounts `n` cache hits without running anything — for runners
    /// that perform their own cache splice before delegating record-
    /// keeping back to the engine.
    pub(crate) fn note_cache_hits(&mut self, n: usize) {
        self.cache_hits += n;
    }

    /// The attached journal's file path, if any.
    pub(crate) fn journal_path(&self) -> Option<&Path> {
        self.journal.as_ref().map(Journal::path)
    }

    /// The progress cadence, if a sink is attached.
    pub(crate) fn progress_every(&self) -> Option<usize> {
        self.progress.as_ref().map(|p| p.every)
    }

    /// Records one freshly-executed cell: journal append (flushed),
    /// cache insert, executed tally. The single write path every runner
    /// funnels through, so journal bytes cannot diverge between them.
    pub(crate) fn record(
        &mut self,
        cell: &Cell,
        hash: &str,
        result: CellResult,
    ) -> Result<(), LabError> {
        if let Some(journal) = &mut self.journal {
            journal.append(cell, &result)?;
        }
        self.cache.insert(hash.to_string(), result);
        self.executed += 1;
        Ok(())
    }

    /// Emits the observe-only end-of-run counters for `synran report`
    /// (cells/sec, cache hit rate). Accumulated across runs on the same
    /// telemetry handle.
    pub(crate) fn finish_counters(
        &self,
        total: usize,
        run_executed: usize,
        warm: usize,
        start: Instant,
    ) {
        self.telemetry.incr("lab.cells.total", total as u64);
        self.telemetry
            .incr("lab.cells.executed", run_executed as u64);
        self.telemetry.incr("lab.cells.cached", warm as u64);
        #[allow(clippy::cast_possible_truncation)]
        self.telemetry
            .incr("lab.elapsed_ns", start.elapsed().as_nanos() as u64);
    }

    /// Emits one heartbeat from the serial fold, if a sink is attached.
    /// Reads clocks and pool stats but writes nothing except to the sink.
    pub(crate) fn emit_heartbeat(
        &mut self,
        done: usize,
        total: usize,
        executed: usize,
        cache_hits: usize,
        start: Instant,
    ) {
        let Some(progress) = &mut self.progress else {
            return;
        };
        let elapsed = start.elapsed().as_secs_f64();
        #[allow(clippy::cast_precision_loss)]
        let cells_per_sec = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        #[allow(clippy::cast_precision_loss)]
        let eta_secs = if cells_per_sec > 0.0 {
            (total - done) as f64 / cells_per_sec
        } else {
            0.0
        };
        progress.sink.heartbeat(&Heartbeat {
            done,
            total,
            executed,
            cache_hits,
            cells_per_sec,
            eta_secs,
            pool: parallel::global_pool().stats(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synran-lab-engine-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn grid() -> Vec<Cell> {
        let mut cells = Vec::new();
        for n in [8usize, 10, 12] {
            for seed in [1u64, 2] {
                let mut cell = Cell::new("synran", "balancer", n);
                cell.runs = 3;
                cell.seed = seed;
                cell.max_rounds = 100_000;
                cells.push(cell);
            }
        }
        cells
    }

    #[test]
    fn results_are_identical_at_every_thread_count() {
        let cells = grid();
        let baseline = Engine::new(1, Telemetry::off()).run_cells(&cells).unwrap();
        for threads in [2, 4, 8] {
            let results = Engine::new(threads, Telemetry::off())
                .run_cells(&cells)
                .unwrap();
            assert_eq!(results, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn cache_short_circuits_and_duplicates_run_once() {
        let mut cells = grid();
        cells.push(cells[0].clone()); // in-list duplicate
        let mut engine = Engine::new(2, Telemetry::off());
        let first = engine.run_cells(&cells).unwrap();
        assert_eq!(engine.executed(), cells.len() - 1, "duplicate ran once");
        assert_eq!(first[0], *first.last().unwrap());

        let again = engine.run_cells(&cells).unwrap();
        assert_eq!(again, first);
        assert_eq!(engine.executed(), cells.len() - 1, "all cached on rerun");
        assert_eq!(engine.cache_hits(), cells.len());
    }

    #[test]
    fn journal_backs_the_cache_across_engines() {
        let path = tmpdir("cache").join("demo.journal.jsonl");
        let cells = grid();
        let (journal, cache) = Journal::open(&path).unwrap();
        let mut engine = Engine::new(1, Telemetry::off()).with_journal(journal, cache);
        let baseline = engine.run_cells(&cells).unwrap();
        assert_eq!(engine.executed(), cells.len());
        drop(engine);

        let (journal, cache) = Journal::open(&path).unwrap();
        let mut resumed = Engine::new(4, Telemetry::off()).with_journal(journal, cache);
        let results = resumed.run_cells(&cells).unwrap();
        assert_eq!(results, baseline);
        assert_eq!(resumed.executed(), 0, "fully warm journal");

        // Cross-campaign dedup: a different engine imports the journal.
        let mut importer = Engine::new(1, Telemetry::off());
        assert_eq!(importer.import_cache(&path).unwrap(), cells.len());
        importer.run_cells(&cells[..2]).unwrap();
        assert_eq!(importer.executed(), 0);
    }

    #[test]
    fn progress_is_observe_only() {
        use crate::progress::MemoryProgress;

        let cells = grid();
        let dir = tmpdir("progress");

        // Without progress.
        let plain_path = dir.join("plain.journal.jsonl");
        let (journal, cache) = Journal::open(&plain_path).unwrap();
        let baseline = Engine::new(2, Telemetry::off())
            .with_journal(journal, cache)
            .run_cells(&cells)
            .unwrap();

        // With progress, every cell.
        let beat_path = dir.join("beats.journal.jsonl");
        let (journal, cache) = Journal::open(&beat_path).unwrap();
        let mut engine = Engine::new(2, Telemetry::off())
            .with_journal(journal, cache)
            .with_progress(1, Box::new(MemoryProgress::default()));
        let observed = engine.run_cells(&cells).unwrap();
        drop(engine);

        assert_eq!(observed, baseline, "results identical with progress on");
        assert_eq!(
            std::fs::read(&plain_path).unwrap(),
            std::fs::read(&beat_path).unwrap(),
            "journal bytes identical with progress on"
        );
    }

    #[test]
    fn heartbeats_track_completion() {
        use crate::progress::{MemoryProgress, ProgressSink};

        // A sink we can inspect after the engine is done: forward into a
        // shared buffer.
        #[derive(Debug, Default, Clone)]
        struct Shared(std::sync::Arc<std::sync::Mutex<MemoryProgress>>);
        impl ProgressSink for Shared {
            fn heartbeat(&mut self, beat: &crate::progress::Heartbeat) {
                self.0.lock().unwrap().heartbeat(beat);
            }
        }

        let cells = grid();
        let sink = Shared::default();
        let mut engine = Engine::new(1, Telemetry::off()).with_progress(2, Box::new(sink.clone()));
        engine.run_cells(&cells).unwrap();
        let beats = sink.0.lock().unwrap().beats.clone();
        assert!(beats.len() >= 2, "initial + final at minimum");
        assert_eq!(beats[0].done, 0);
        let last = beats.last().unwrap();
        assert_eq!(last.done, cells.len());
        assert_eq!(last.total, cells.len());
        assert_eq!(last.executed, cells.len());
        assert!((last.percent() - 100.0).abs() < 1e-9);

        // Second run: everything cached, the initial heartbeat already
        // reports completion.
        engine.run_cells(&cells).unwrap();
        let beats = sink.0.lock().unwrap().beats.clone();
        let first_of_second = &beats[beats.len() - 1];
        assert_eq!(first_of_second.done, cells.len());
        assert_eq!(first_of_second.cache_hits, cells.len());
    }

    #[test]
    fn error_is_deterministic_by_cell_order() {
        let mut cells = grid();
        cells[1].protocol = "bogus".into();
        cells[4].protocol = "bogus".into();
        for threads in [1, 4] {
            let err = Engine::new(threads, Telemetry::off())
                .run_cells(&cells)
                .unwrap_err();
            assert!(
                err.to_string().contains("bogus"),
                "threads {threads}: {err}"
            );
        }
    }
}
