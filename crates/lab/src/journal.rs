//! Resumable campaign journals: append-only JSONL, one completed cell per
//! line.
//!
//! A campaign appends each finished cell to
//! `results/<campaign>.journal.jsonl` as soon as its wave completes, so a
//! killed grid resumes from the last durable line instead of restarting
//! from zero. On load the journal is also the **result cache**: any cell
//! whose [content hash](crate::Cell::content_hash) already appears is
//! skipped, and journals from *other* campaigns can be imported for
//! cross-campaign dedup (the hash covers every execution-relevant
//! parameter, so a hit is always safe to reuse).
//!
//! The loader is truncation-tolerant by construction: a line that does not
//! parse — the half-written tail of a killed process, or an event kind
//! from a newer writer — is skipped, never fatal.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::cell::{from_jsonl, json_str_field, json_u64_field, to_jsonl, Cell, CellResult};

/// A content-keyed map of completed cells: hash → result.
pub type CellCache = BTreeMap<String, CellResult>;

/// The provenance header a campaign run appends first (see
/// [`Journal::append_header`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Campaign name.
    pub name: String,
    /// Cell count of the spec that wrote the header.
    pub cells: usize,
    /// Content hash of that spec.
    pub spec_hash: String,
}

/// Everything a full pass over a journal file learns — the cache plus the
/// line-level accounting `synran campaign status` and `synran report`
/// surface (how many lines truncation recovery actually dropped, not just
/// what survived).
#[derive(Debug, Clone, Default)]
pub struct JournalScan {
    /// Parsed cell results, content-hash keyed.
    pub cache: CellCache,
    /// Total lines in the file.
    pub lines: usize,
    /// Cell lines that parsed.
    pub entries: usize,
    /// Lines dropped by truncation recovery: not blank, not a header, not
    /// a parseable cell. Includes the half-written tail of a killed run.
    pub skipped: usize,
    /// The last `"type":"campaign"` header, if any.
    pub header: Option<JournalHeader>,
    /// Distinct cells in first-appearance order, **last line wins** per
    /// hash — a crash-retried fleet run may append the same cell twice,
    /// and the re-run's line supersedes. This is the row list `synran
    /// report` renders into a per-cell table.
    pub rows: Vec<(Cell, CellResult)>,
}

/// Reads a journal file line by line, classifying every line. A missing
/// file scans as empty.
///
/// # Errors
///
/// Returns an I/O error only for a file that exists but cannot be read.
pub fn scan_journal(path: &Path) -> std::io::Result<JournalScan> {
    let mut scan = JournalScan::default();
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(scan),
        Err(e) => return Err(e),
    };
    let mut row_of: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        scan.lines += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some((hash, cell, result)) = from_jsonl(trimmed) {
            match row_of.get(&hash) {
                Some(&p) => scan.rows[p] = (cell, result.clone()),
                None => {
                    row_of.insert(hash.clone(), scan.rows.len());
                    scan.rows.push((cell, result.clone()));
                }
            }
            scan.cache.insert(hash, result);
            scan.entries += 1;
            continue;
        }
        let well_formed = trimmed.starts_with('{') && trimmed.ends_with('}');
        if well_formed && json_str_field(trimmed, "type") == Some("campaign") {
            if let (Some(name), Some(cells), Some(spec_hash)) = (
                json_str_field(trimmed, "name"),
                json_u64_field(trimmed, "cells"),
                json_str_field(trimmed, "spec_hash"),
            ) {
                scan.header = Some(JournalHeader {
                    name: name.to_string(),
                    cells: usize::try_from(cells).unwrap_or(usize::MAX),
                    spec_hash: spec_hash.to_string(),
                });
                continue;
            }
        }
        scan.skipped += 1;
    }
    Ok(scan)
}

/// Reads every parseable cell line of a journal file into a cache.
/// A missing file is an empty cache; unparseable lines (truncated tails,
/// unknown event kinds) are skipped — [`scan_journal`] reports how many.
///
/// # Errors
///
/// Returns an I/O error only for a file that exists but cannot be read.
pub fn load_cache(path: &Path) -> std::io::Result<CellCache> {
    Ok(scan_journal(path)?.cache)
}

/// An open, append-mode campaign journal.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    out: BufWriter<File>,
}

impl Journal {
    /// Opens `path` for appending (creating parent directories and the
    /// file as needed) and loads the entries already present, which become
    /// the campaign's warm cache.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating directories, reading the
    /// existing journal, or opening it for append.
    pub fn open(path: &Path) -> std::io::Result<(Journal, CellCache)> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let cache = load_cache(path)?;
        let out = BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?);
        Ok((
            Journal {
                path: path.to_path_buf(),
                out,
            },
            cache,
        ))
    }

    /// Like [`Journal::open`] but truncates first — a `--fresh` run that
    /// deliberately discards the cache.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating directories or the file.
    pub fn create_fresh(path: &Path) -> std::io::Result<Journal> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let out = BufWriter::new(File::create(path)?);
        Ok(Journal {
            path: path.to_path_buf(),
            out,
        })
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a session header line (`"type":"campaign"`) recording the
    /// campaign name, its cell count, and the spec's content hash. Loaders
    /// skip it; humans and tooling get provenance.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write or flush.
    pub fn append_header(
        &mut self,
        campaign: &str,
        cells: usize,
        spec_hash: &str,
    ) -> std::io::Result<()> {
        writeln!(
            self.out,
            "{{\"type\":\"campaign\",\"name\":\"{campaign}\",\"cells\":{cells},\"spec_hash\":\"{spec_hash}\"}}"
        )?;
        self.out.flush()
    }

    /// Appends one completed cell and flushes, so the line is durable
    /// before the next wave starts.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the write or flush.
    pub fn append(&mut self, cell: &Cell, result: &CellResult) -> std::io::Result<()> {
        writeln!(self.out, "{}", to_jsonl(cell, result))?;
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("synran-lab-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cell(seed: u64) -> Cell {
        Cell {
            seed,
            ..Cell::new("synran", "passive", 8)
        }
    }

    fn result(r: u32) -> CellResult {
        CellResult {
            rounds: vec![r, r + 1],
            kills: vec![0, 1],
            timeouts: 0,
            violations: 0,
        }
    }

    #[test]
    fn append_then_load_round_trips() {
        let path = tmpdir("roundtrip").join("demo.journal.jsonl");
        let (mut journal, cache) = Journal::open(&path).unwrap();
        assert!(cache.is_empty());
        journal.append_header("demo", 2, "abcd").unwrap();
        journal.append(&cell(1), &result(4)).unwrap();
        journal.append(&cell(2), &result(9)).unwrap();
        drop(journal);

        let (_, cache) = Journal::open(&path).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache[&cell(1).content_hash()], result(4));
        assert_eq!(cache[&cell(2).content_hash()], result(9));
    }

    #[test]
    fn loader_skips_truncated_tail_and_unknown_lines() {
        let path = tmpdir("truncated").join("demo.journal.jsonl");
        let mut text = String::new();
        text.push_str(
            "{\"type\":\"campaign\",\"name\":\"demo\",\"cells\":3,\"spec_hash\":\"x\"}\n",
        );
        text.push_str(&to_jsonl(&cell(1), &result(4)));
        text.push('\n');
        text.push_str("{\"type\":\"from_the_future\",\"x\":1}\n");
        let full_line = to_jsonl(&cell(2), &result(9));
        text.push_str(&full_line[..full_line.len() / 2]); // killed mid-line
        std::fs::write(&path, text).unwrap();

        let cache = load_cache(&path).unwrap();
        assert_eq!(cache.len(), 1, "only the complete cell line survives");
        assert!(cache.contains_key(&cell(1).content_hash()));
    }

    #[test]
    fn scan_accounts_for_every_line() {
        let path = tmpdir("scan").join("demo.journal.jsonl");
        let mut text = String::new();
        text.push_str(
            "{\"type\":\"campaign\",\"name\":\"demo\",\"cells\":3,\"spec_hash\":\"x\"}\n",
        );
        text.push_str(&to_jsonl(&cell(1), &result(4)));
        text.push('\n');
        text.push_str("{\"type\":\"from_the_future\",\"x\":1}\n");
        let full_line = to_jsonl(&cell(2), &result(9));
        text.push_str(&full_line[..full_line.len() / 2]); // killed mid-line
        std::fs::write(&path, text).unwrap();

        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.lines, 4);
        assert_eq!(scan.entries, 1);
        assert_eq!(scan.skipped, 2, "unknown type + truncated tail");
        assert_eq!(scan.cache.len(), 1);
        assert_eq!(
            scan.header,
            Some(JournalHeader {
                name: "demo".to_string(),
                cells: 3,
                spec_hash: "x".to_string(),
            })
        );

        let empty = scan_journal(Path::new("/nonexistent/never/x.jsonl")).unwrap();
        assert_eq!(empty.lines, 0);
        assert!(empty.header.is_none());
    }

    #[test]
    fn duplicate_cell_lines_keep_one_row_last_wins() {
        // A crash-retried fleet run can append the same cell twice: once
        // before the kill, once after resume. The scan must surface one
        // row per distinct cell, carrying the *last* line's result.
        let path = tmpdir("dup").join("demo.journal.jsonl");
        let mut text = String::new();
        text.push_str(&to_jsonl(&cell(1), &result(4)));
        text.push('\n');
        text.push_str(&to_jsonl(&cell(2), &result(9)));
        text.push('\n');
        text.push_str(&to_jsonl(&cell(1), &result(7))); // retry supersedes
        text.push('\n');
        std::fs::write(&path, text).unwrap();

        let scan = scan_journal(&path).unwrap();
        assert_eq!(scan.entries, 3, "every parsed line still counts");
        assert_eq!(scan.rows.len(), 2, "one row per distinct cell");
        assert_eq!(scan.rows[0].0.seed, 1, "first-appearance order kept");
        assert_eq!(scan.rows[0].1, result(7), "last line wins");
        assert_eq!(scan.rows[1].1, result(9));
        assert_eq!(scan.cache[&cell(1).content_hash()], result(7));
    }

    #[test]
    fn missing_journal_is_empty_cache() {
        let cache = load_cache(Path::new("/nonexistent/never/demo.journal.jsonl")).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn fresh_truncates() {
        let path = tmpdir("fresh").join("demo.journal.jsonl");
        let (mut journal, _) = Journal::open(&path).unwrap();
        journal.append(&cell(1), &result(4)).unwrap();
        drop(journal);
        let journal = Journal::create_fresh(&path).unwrap();
        assert_eq!(journal.path(), path);
        drop(journal);
        assert!(load_cache(&path).unwrap().is_empty());
    }
}
