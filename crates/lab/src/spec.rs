//! The scenario spec: a line-oriented, declarative campaign description.
//!
//! A `.campaign` file is a list of `key = value` assignments plus any
//! number of `sweep key = a,b,c` axes. Comments start with `#`; blank
//! lines are ignored. The cross product of the sweep axes (first-declared
//! axis outermost) expanded against the scalar assignments yields the
//! campaign's deterministic cell list — sweeps are *data*, not code.
//!
//! ```text
//! # E7-style fault-range sweep.
//! campaign  = t_sweep_demo
//! protocol  = synran
//! adversary = balancer
//! runs      = 40
//! seed      = 7
//! sweep n   = 256,1024
//! sweep t   = 1,2,4,8,16
//! ```
//!
//! Scalar keys redeclared later in the file win (last-wins, like the
//! bench CLI's argument parser); redeclaring a sweep key replaces its
//! values but keeps its axis position.

use std::collections::BTreeMap;
use std::path::Path;

use crate::cell::{fnv1a64, Cell};
use crate::LabError;

/// Every key a spec may assign or sweep. Anything else is a parse error —
/// sweeps-as-data only works if typos fail loudly instead of silently
/// configuring nothing.
const KNOWN_KEYS: &[&str] = &[
    "campaign",
    "experiment",
    "protocol",
    "adversary",
    "n",
    "t",
    "ones",
    "runs",
    "seed",
    "max_rounds",
    "cap",
    "samples",
    "trials",
    "horizon",
    "rate",
    "telemetry",
];

/// Keys that only make sense as scalars.
const SCALAR_ONLY_KEYS: &[&str] = &["campaign", "experiment", "telemetry"];

/// A parsed campaign spec: scalar parameters plus sweep axes.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    name: String,
    experiment: String,
    params: BTreeMap<String, String>,
    sweeps: Vec<(String, Vec<String>)>,
}

impl CampaignSpec {
    /// Parses a spec from text. `fallback_name` names the campaign when no
    /// `campaign = ...` line is present (callers pass the file stem).
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] (with a line number) for malformed
    /// lines, unknown keys, empty sweep lists, or a sweep of a
    /// scalar-only key.
    pub fn parse(text: &str, fallback_name: &str) -> Result<CampaignSpec, LabError> {
        let mut params = BTreeMap::new();
        let mut sweeps: Vec<(String, Vec<String>)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (lhs, rhs) = line.split_once('=').ok_or_else(|| {
                LabError::Spec(format!(
                    "line {lineno}: expected `key = value`, got {line:?}"
                ))
            })?;
            let (lhs, value) = (lhs.trim(), rhs.trim());
            if value.is_empty() {
                return Err(LabError::Spec(format!(
                    "line {lineno}: empty value for {lhs:?}"
                )));
            }
            if let Some(key) = lhs.strip_prefix("sweep ").map(str::trim) {
                check_key(key, lineno)?;
                if SCALAR_ONLY_KEYS.contains(&key) {
                    return Err(LabError::Spec(format!(
                        "line {lineno}: {key:?} cannot be swept"
                    )));
                }
                let values: Vec<String> = value
                    .split(',')
                    .map(|v| v.trim().to_string())
                    .filter(|v| !v.is_empty())
                    .collect();
                if values.is_empty() {
                    return Err(LabError::Spec(format!(
                        "line {lineno}: sweep {key} has no values"
                    )));
                }
                match sweeps.iter_mut().find(|(k, _)| k == key) {
                    Some((_, existing)) => *existing = values,
                    None => sweeps.push((key.to_string(), values)),
                }
            } else {
                check_key(lhs, lineno)?;
                params.insert(lhs.to_string(), value.to_string());
            }
        }
        let name = params
            .get("campaign")
            .cloned()
            .unwrap_or_else(|| fallback_name.to_string());
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "._-".contains(c))
        {
            return Err(LabError::Spec(format!(
                "campaign name {name:?} must be non-empty [A-Za-z0-9._-]"
            )));
        }
        let experiment = params
            .get("experiment")
            .cloned()
            .unwrap_or_else(|| "grid".to_string());
        Ok(CampaignSpec {
            name,
            experiment,
            params,
            sweeps,
        })
    }

    /// Parses a spec file; the campaign name defaults to the file stem.
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Io`] if the file cannot be read, or any
    /// [`CampaignSpec::parse`] error.
    pub fn parse_file(path: &Path) -> Result<CampaignSpec, LabError> {
        let text = std::fs::read_to_string(path)?;
        let stem = path
            .file_stem()
            .map_or("campaign", |s| s.to_str().unwrap_or("campaign"));
        CampaignSpec::parse(&text, stem)
    }

    /// The campaign name (journal files are named after it).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The experiment renderer this spec targets (`grid` unless the spec
    /// says otherwise; `e3`, `e4`, and `e7` select the preset renderers).
    #[must_use]
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// A scalar parameter, if assigned.
    #[must_use]
    pub fn param(&self, key: &str) -> Option<&str> {
        self.params.get(key).map(String::as_str)
    }

    /// A `usize` scalar parameter with a default.
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] if the value does not parse.
    pub fn param_usize(&self, key: &str, default: usize) -> Result<usize, LabError> {
        parse_num(self.param(key), key, default)
    }

    /// A `u64` scalar parameter with a default.
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] if the value does not parse.
    pub fn param_u64(&self, key: &str, default: u64) -> Result<u64, LabError> {
        parse_num(self.param(key), key, default)
    }

    /// The sweep values of `key`, if the spec sweeps it.
    #[must_use]
    pub fn sweep(&self, key: &str) -> Option<&[String]> {
        self.sweeps
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_slice())
    }

    /// The sweep values of `key` as `usize`s.
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] if the key is not swept or a value does
    /// not parse.
    pub fn sweep_usize(&self, key: &str) -> Result<Vec<usize>, LabError> {
        let values = self
            .sweep(key)
            .ok_or_else(|| LabError::Spec(format!("expected a `sweep {key} = ...` axis")))?;
        values
            .iter()
            .map(|v| {
                v.parse()
                    .map_err(|_| LabError::Spec(format!("sweep {key}: not an integer: {v:?}")))
            })
            .collect()
    }

    /// The telemetry mode the spec asks for (`off` unless assigned).
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] for an unknown mode.
    pub fn telemetry_mode(&self) -> Result<synran_sim::TelemetryMode, LabError> {
        self.param("telemetry")
            .map_or(Ok(synran_sim::TelemetryMode::Off), |v| {
                v.parse()
                    .map_err(|e| LabError::Spec(format!("telemetry: {e}")))
            })
    }

    /// A stable content hash over the spec's semantic payload (params in
    /// key order, then sweep axes in declaration order) — recorded in the
    /// journal header for provenance.
    #[must_use]
    pub fn content_hash(&self) -> String {
        let mut canonical = String::new();
        for (k, v) in &self.params {
            canonical.push_str(k);
            canonical.push('=');
            canonical.push_str(v);
            canonical.push('|');
        }
        for (k, values) in &self.sweeps {
            canonical.push_str("sweep ");
            canonical.push_str(k);
            canonical.push('=');
            canonical.push_str(&values.join(","));
            canonical.push('|');
        }
        format!("{:016x}", fnv1a64(canonical.as_bytes()))
    }

    /// Expands a `grid` spec into its deterministic cell list: the cross
    /// product of the sweep axes (first axis outermost), each assignment
    /// merged over the scalar parameters.
    ///
    /// `t` accepts the tokens `max` (`n − 1`) and `half` (`n / 2`) besides
    /// plain integers; `ones` defaults to `n / 2`.
    ///
    /// # Errors
    ///
    /// Returns [`LabError::Spec`] when `n` is missing or any value fails
    /// to parse.
    pub fn expand_grid(&self) -> Result<Vec<Cell>, LabError> {
        let total: usize = self.sweeps.iter().map(|(_, v)| v.len()).product();
        let mut cells = Vec::with_capacity(total);
        let mut assignment: Vec<usize> = vec![0; self.sweeps.len()];
        loop {
            let mut merged: BTreeMap<&str, &str> = self
                .params
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            for (axis, &pick) in self.sweeps.iter().zip(&assignment) {
                merged.insert(axis.0.as_str(), axis.1[pick].as_str());
            }
            cells.push(cell_from_map(&merged)?);
            // Odometer increment, last axis fastest.
            let mut i = self.sweeps.len();
            loop {
                if i == 0 {
                    return Ok(cells);
                }
                i -= 1;
                assignment[i] += 1;
                if assignment[i] < self.sweeps[i].1.len() {
                    break;
                }
                assignment[i] = 0;
            }
        }
    }
}

fn check_key(key: &str, lineno: usize) -> Result<(), LabError> {
    if KNOWN_KEYS.contains(&key) {
        Ok(())
    } else {
        Err(LabError::Spec(format!(
            "line {lineno}: unknown key {key:?} (known: {})",
            KNOWN_KEYS.join(", ")
        )))
    }
}

fn parse_num<T: std::str::FromStr>(
    value: Option<&str>,
    key: &str,
    default: T,
) -> Result<T, LabError> {
    value.map_or(Ok(default), |v| {
        v.parse()
            .map_err(|_| LabError::Spec(format!("{key}: not an integer: {v:?}")))
    })
}

fn map_num<T: std::str::FromStr>(
    merged: &BTreeMap<&str, &str>,
    key: &str,
    default: T,
) -> Result<T, LabError> {
    parse_num(merged.get(key).copied(), key, default)
}

fn cell_from_map(merged: &BTreeMap<&str, &str>) -> Result<Cell, LabError> {
    let n: usize = merged
        .get("n")
        .copied()
        .ok_or_else(|| LabError::Spec("a grid campaign must assign or sweep `n`".into()))
        .and_then(|v| {
            v.parse()
                .map_err(|_| LabError::Spec(format!("n: not an integer: {v:?}")))
        })?;
    let t = match merged.get("t").copied() {
        None | Some("max") => n.saturating_sub(1),
        Some("half") => n / 2,
        Some(v) => v
            .parse()
            .map_err(|_| LabError::Spec(format!("t: not an integer: {v:?}")))?,
    };
    Ok(Cell {
        protocol: merged
            .get("protocol")
            .copied()
            .unwrap_or("synran")
            .to_string(),
        adversary: merged
            .get("adversary")
            .copied()
            .unwrap_or("passive")
            .to_string(),
        n,
        t,
        ones: map_num(merged, "ones", n / 2)?,
        runs: map_num(merged, "runs", 10)?,
        seed: map_num(merged, "seed", 1)?,
        max_rounds: map_num(merged, "max_rounds", 200_000)?,
        cap: map_num(merged, "cap", 0)?,
        samples: map_num(merged, "samples", 0)?,
        horizon: map_num(merged, "horizon", 0)?,
        rate: map_num(merged, "rate", 0)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "\
# demo spec
campaign = demo
protocol = synran
adversary = balancer
runs = 4
seed = 9
sweep n = 8,12
sweep t = half,max
";

    #[test]
    fn parses_and_expands_in_declaration_order() {
        let spec = CampaignSpec::parse(DEMO, "fallback").unwrap();
        assert_eq!(spec.name(), "demo");
        assert_eq!(spec.experiment(), "grid");
        assert_eq!(spec.param("runs"), Some("4"));
        assert_eq!(spec.sweep_usize("n").unwrap(), vec![8, 12]);
        let cells = spec.expand_grid().unwrap();
        assert_eq!(cells.len(), 4);
        // First axis (n) outermost, second (t) fastest.
        let keys: Vec<(usize, usize)> = cells.iter().map(|c| (c.n, c.t)).collect();
        assert_eq!(keys, vec![(8, 4), (8, 7), (12, 6), (12, 11)]);
        assert!(cells.iter().all(|c| c.runs == 4 && c.seed == 9));
        assert!(cells.iter().all(|c| c.adversary == "balancer"));
    }

    #[test]
    fn fallback_name_comes_from_caller() {
        let spec = CampaignSpec::parse("sweep n = 4,8\n", "stem").unwrap();
        assert_eq!(spec.name(), "stem");
        assert_eq!(spec.expand_grid().unwrap().len(), 2);
    }

    #[test]
    fn no_sweeps_is_a_single_cell() {
        let spec = CampaignSpec::parse("n = 16\nadversary = storm\n", "one").unwrap();
        let cells = spec.expand_grid().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].n, 16);
        assert_eq!(cells[0].t, 15);
        assert_eq!(cells[0].ones, 8);
    }

    #[test]
    fn last_wins_and_sweep_redeclare_replaces() {
        let spec = CampaignSpec::parse("n = 8\nn = 16\nsweep t = 1,2\nsweep t = 3\n", "x").unwrap();
        assert_eq!(spec.param("n"), Some("16"));
        assert_eq!(spec.sweep_usize("t").unwrap(), vec![3]);
    }

    #[test]
    fn errors_are_specific() {
        let unknown = CampaignSpec::parse("bogus = 1\n", "x").unwrap_err();
        assert!(unknown.to_string().contains("unknown key"), "{unknown}");
        let noeq = CampaignSpec::parse("just words\n", "x").unwrap_err();
        assert!(noeq.to_string().contains("key = value"), "{noeq}");
        let empty = CampaignSpec::parse("sweep n =\n", "x").unwrap_err();
        assert!(empty.to_string().contains("empty value"), "{empty}");
        let scalar = CampaignSpec::parse("sweep telemetry = off,spans\n", "x").unwrap_err();
        assert!(scalar.to_string().contains("cannot be swept"), "{scalar}");
        let missing_n = CampaignSpec::parse("runs = 2\n", "x")
            .unwrap()
            .expand_grid()
            .unwrap_err();
        assert!(missing_n.to_string().contains('n'), "{missing_n}");
    }

    #[test]
    fn telemetry_mode_parses() {
        use synran_sim::TelemetryMode;
        let off = CampaignSpec::parse("n = 4\n", "x").unwrap();
        assert_eq!(off.telemetry_mode().unwrap(), TelemetryMode::Off);
        let counters = CampaignSpec::parse("n = 4\ntelemetry = counters\n", "x").unwrap();
        assert_eq!(counters.telemetry_mode().unwrap(), TelemetryMode::Counters);
        let bad = CampaignSpec::parse("n = 4\ntelemetry = loud\n", "x").unwrap();
        assert!(bad.telemetry_mode().is_err());
    }

    #[test]
    fn spec_hash_is_stable_and_sensitive() {
        let a = CampaignSpec::parse(DEMO, "x").unwrap();
        let b = CampaignSpec::parse(DEMO, "x").unwrap();
        assert_eq!(a.content_hash(), b.content_hash());
        let c = CampaignSpec::parse(&DEMO.replace("seed = 9", "seed = 10"), "x").unwrap();
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn comments_and_inline_comments_are_stripped() {
        let spec = CampaignSpec::parse("n = 8  # system size\n# whole line\n", "x").unwrap();
        assert_eq!(spec.param("n"), Some("8"));
    }
}
