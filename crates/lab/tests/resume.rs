//! Crash-resume determinism: an interrupted campaign, resumed at any
//! thread count, renders byte-identical output to an uninterrupted serial
//! run — the acceptance contract of the campaign engine.
//!
//! "Interrupted" is simulated the honest way: by truncating the journal
//! file, both at a cell boundary (a clean kill between waves) and
//! mid-line (a kill during the append itself).

use std::fs;
use std::path::{Path, PathBuf};

use synran_lab::{load_cache, presets, CampaignSpec, Engine, Journal};
use synran_sim::Telemetry;

const SPEC: &str = "\
campaign  = resume-demo
adversary = balancer
runs      = 3
seed      = 11
sweep n   = 8,10,12
sweep t   = half,max
";

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synran-lab-resume-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn spec() -> CampaignSpec {
    CampaignSpec::parse(SPEC, "resume-demo").unwrap()
}

/// Renders the campaign, journalling into `journal` when given.
fn render(threads: usize, journal: Option<&Path>) -> Vec<u8> {
    let mut engine = match journal {
        Some(path) => {
            let (journal, cache) = Journal::open(path).unwrap();
            Engine::new(threads, Telemetry::off()).with_journal(journal, cache)
        }
        None => Engine::new(threads, Telemetry::off()),
    };
    let mut out = Vec::new();
    presets::run_campaign(&spec(), &mut engine, &mut out).unwrap();
    out
}

#[test]
fn journalled_run_matches_journal_free_serial_run() {
    let dir = tmpdir("baseline");
    let journal = dir.join("resume-demo.journal.jsonl");
    let baseline = render(1, None);
    assert_eq!(render(1, Some(&journal)), baseline);
    assert_eq!(
        load_cache(&journal).unwrap().len(),
        6,
        "all cells journalled"
    );
}

#[test]
fn resume_after_cell_boundary_truncation_is_byte_identical() {
    let dir = tmpdir("boundary");
    let full = dir.join("full.journal.jsonl");
    let baseline = render(1, Some(&full));
    let text = fs::read_to_string(&full).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "expected several journal lines");

    for threads in [1usize, 2, 8] {
        for keep in [1, lines.len() / 2, lines.len() - 1] {
            let journal = dir.join(format!("t{threads}-k{keep}.journal.jsonl"));
            fs::write(&journal, format!("{}\n", lines[..keep].join("\n"))).unwrap();
            let resumed = render(threads, Some(&journal));
            assert_eq!(
                resumed,
                baseline,
                "threads = {threads}, kept {keep}/{} lines",
                lines.len()
            );
            assert_eq!(
                load_cache(&journal).unwrap().len(),
                6,
                "journal complete again after resume"
            );
        }
    }
}

#[test]
fn resume_after_mid_line_truncation_is_byte_identical() {
    let dir = tmpdir("midline");
    let full = dir.join("full.journal.jsonl");
    let baseline = render(1, Some(&full));
    let text = fs::read_to_string(&full).unwrap();

    for threads in [1usize, 2, 8] {
        // Kill the writer partway through the 4th journal line.
        let boundary = text.match_indices('\n').nth(2).map(|(i, _)| i + 1).unwrap();
        let cut = boundary + (text.len() - boundary) / 3;
        let journal = dir.join(format!("t{threads}.journal.jsonl"));
        fs::write(&journal, &text[..cut]).unwrap();
        let resumed = render(threads, Some(&journal));
        assert_eq!(resumed, baseline, "threads = {threads}");
    }
}

#[test]
fn imported_journal_short_circuits_a_sibling_campaign() {
    let dir = tmpdir("import");
    let donor = dir.join("donor.journal.jsonl");
    let baseline = render(1, Some(&donor));

    // A journal-free engine that imports the donor's cache executes
    // nothing and still renders identically.
    let mut engine = Engine::new(4, Telemetry::off());
    assert_eq!(engine.import_cache(&donor).unwrap(), 6);
    let mut out = Vec::new();
    presets::run_campaign(&spec(), &mut engine, &mut out).unwrap();
    assert_eq!(out, baseline);
    assert_eq!(engine.executed(), 0, "fully served from the import");
    assert_eq!(engine.cache_hits(), 6);
}
