//! The acceptance pin for the E3 campaign: the spec-driven path
//! (`experiment = e3`, what `synran campaign run campaigns/e3.campaign`
//! executes) and the params-driven path (what the `e3_lower_bound` binary
//! executes) render byte-identical output, at different thread counts and
//! telemetry modes. Combined with the presets being the binaries' only
//! code path, this is the "campaign reproduces the binary's table
//! byte-for-byte" guarantee.

use synran_lab::presets::{self, e3::E3Params};
use synran_lab::{CampaignSpec, Engine};
use synran_sim::{Telemetry, TelemetryMode};

#[test]
fn spec_path_and_binary_path_render_identical_bytes() {
    let spec = CampaignSpec::parse(
        "campaign = e3-mini\nexperiment = e3\nruns = 2\nsamples = 1\nseed = 3\n\
         telemetry = counters\nsweep n = 8,10\n",
        "e3-mini",
    )
    .unwrap();
    let params = E3Params {
        sizes: vec![8, 10],
        runs: 2,
        samples: 1,
        seed: 3,
    };

    // The campaign path: serial, counters-mode telemetry (as the shipped
    // spec asks for).
    let mut via_spec = Vec::new();
    let mut spec_engine = Engine::new(1, Telemetry::new(TelemetryMode::Counters));
    presets::run_campaign(&spec, &mut spec_engine, &mut via_spec).unwrap();

    // The binary path: explicit params, eight worker threads, telemetry
    // off — none of which may change a byte of the rendered tables.
    let mut via_params = Vec::new();
    let mut bin_engine = Engine::new(8, Telemetry::off());
    presets::e3::run(&params, &mut bin_engine, &mut via_params).unwrap();

    assert_eq!(
        String::from_utf8(via_spec).unwrap(),
        String::from_utf8(via_params).unwrap()
    );
    assert_eq!(spec_engine.executed(), bin_engine.executed());

    // The render writes the conventional telemetry artifact relative to
    // the working directory; keep the test tree clean.
    let _ = std::fs::remove_file("results/e3_lower_bound.telemetry.jsonl");
    let _ = std::fs::remove_dir("results");
}
