//! The telemetry layer's contract: it is **observe-only**. For every
//! telemetry mode (off, counters, spans) and every thread count, the
//! simulation results — verdicts, reports, valency estimates, batch
//! outcomes — are byte-identical to the uninstrumented serial run.
//!
//! This is the determinism guarantee PR 1's parallel layer established,
//! extended across the instrumentation: attaching a hub must never change
//! what the simulator computes, only what it records on the side.

use synran::adversary::{estimate_valency, ProbeSet, RandomKiller};
use synran::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const MODES: [TelemetryMode; 3] = [
    TelemetryMode::Off,
    TelemetryMode::Counters,
    TelemetryMode::Spans,
];

/// A single consensus run produces a byte-identical report whatever
/// telemetry mode is attached.
#[test]
fn check_consensus_is_telemetry_invariant() {
    let n = 12;
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < n / 2)).collect();
    let cfg = SimConfig::new(n).faults(n - 1).seed(33).max_rounds(50_000);
    let golden = check_consensus(
        &SynRan::new(),
        &inputs,
        cfg.clone(),
        &mut RandomKiller::new(2, 33),
    )
    .expect("run");
    for mode in MODES {
        let telemetry = Telemetry::new(mode);
        let got = check_consensus_with(
            &SynRan::new(),
            &inputs,
            cfg.clone(),
            &mut RandomKiller::new(2, 33),
            &telemetry,
        )
        .expect("run");
        assert_eq!(
            format!("{got:?}"),
            format!("{golden:?}"),
            "mode={mode}: verdict and report must match byte-for-byte"
        );
    }
}

/// Valency estimates are invariant across telemetry modes × thread
/// counts: all nine configurations reproduce the uninstrumented serial
/// golden value exactly (f64 bit pattern included).
#[test]
fn valency_estimate_is_telemetry_invariant() {
    let n = 12;
    let build = |threads: usize, telemetry: &Telemetry| {
        let protocol = SynRan::new();
        let mut world = World::new(
            SimConfig::new(n)
                .faults(n / 2)
                .seed(21)
                .max_rounds(5_000)
                .threads(threads),
            |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
        )
        .expect("valid config");
        world.set_telemetry(telemetry.clone());
        world.phase_a().expect("phase A");
        world
    };
    let probes = ProbeSet::synran(n / 2);
    let golden =
        estimate_valency(&build(1, &Telemetry::off()), &probes, 3, 30, 17).expect("estimate");
    for mode in MODES {
        for threads in THREAD_COUNTS {
            let telemetry = Telemetry::new(mode);
            let est = estimate_valency(&build(threads, &telemetry), &probes, 3, 30, 17)
                .expect("estimate");
            assert_eq!(
                format!("{est:?}"),
                format!("{golden:?}"),
                "mode={mode} threads={threads}: debug repr must match bit-for-bit"
            );
        }
    }
}

/// Seed batches are invariant across telemetry modes × thread counts,
/// including the per-run seed sequence and every verdict.
#[test]
fn run_batch_is_telemetry_invariant() {
    let n = 8;
    let protocol = SynRan::new();
    let cfg = |threads: usize| {
        SimConfig::new(n)
            .faults(n - 1)
            .max_rounds(50_000)
            .threads(threads)
    };
    let golden = run_batch(
        &protocol,
        InputAssignment::Random,
        &cfg(1),
        16,
        0xBA7C4,
        |seed| RandomKiller::new(2, seed),
    )
    .expect("batch");
    for mode in MODES {
        for threads in THREAD_COUNTS {
            let telemetry = Telemetry::new(mode);
            let out = run_batch_with(
                &protocol,
                InputAssignment::Random,
                &cfg(threads),
                16,
                0xBA7C4,
                &telemetry,
                |seed| RandomKiller::new(2, seed),
            )
            .expect("batch");
            assert_eq!(
                format!("{out:?}"),
                format!("{golden:?}"),
                "mode={mode} threads={threads}"
            );
        }
    }
}

/// The counters a run records are themselves deterministic: two identical
/// instrumented runs produce identical counter snapshots, and the
/// simulator-level counters agree with the report's metrics.
#[test]
fn recorded_counters_are_deterministic_and_consistent() {
    let n = 10;
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < n / 2)).collect();
    let cfg = SimConfig::new(n).faults(n - 1).seed(7).max_rounds(50_000);
    let go = || {
        let telemetry = Telemetry::new(TelemetryMode::Counters);
        let verdict = check_consensus_with(
            &SynRan::new(),
            &inputs,
            cfg.clone(),
            &mut RandomKiller::new(2, 7),
            &telemetry,
        )
        .expect("run");
        (telemetry.snapshot(), verdict)
    };
    let (snap_a, verdict) = go();
    let (snap_b, _) = go();
    assert_eq!(
        snap_a.counters, snap_b.counters,
        "counters are reproducible"
    );
    let metrics = verdict.report().metrics();
    assert_eq!(
        snap_a.counter("sim.rounds"),
        Some(u64::from(metrics.rounds_completed())),
        "sim.rounds matches the report"
    );
    assert_eq!(
        snap_a.counter("sim.kills"),
        Some(metrics.total_kills() as u64),
        "sim.kills matches the report"
    );
    assert_eq!(
        snap_a.counter("sim.messages_delivered"),
        Some(metrics.messages_delivered()),
        "sim.messages_delivered matches the report"
    );
}
