//! The parallel execution layer's contract: for every thread count, the
//! results are **byte-identical** to the serial (`threads = 1`) run.
//!
//! These tests pin the contract end-to-end — through `estimate_valency`,
//! `run_batch`, and the raw `par_map` primitive — at thread counts both
//! below and above this machine's core count (oversubscription included).

use synran::adversary::{estimate_valency, ProbeSet, RandomKiller};
use synran::prelude::*;
use synran::sim::parallel;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// `par_map` is exactly the serial map, whatever the worker count.
#[test]
fn par_map_matches_serial_map() {
    let golden: Vec<u64> = (0..97)
        .map(|i| SimRng::new(0xFEED).derive(i as u64).next_u64())
        .collect();
    for threads in [1usize, 2, 3, 8, 97, 200] {
        let got = parallel::par_map(threads, 97, |i| {
            SimRng::new(0xFEED).derive(i as u64).next_u64()
        });
        assert_eq!(got, golden, "threads={threads}");
    }
}

/// Valency estimates are thread-count invariant: every configuration
/// reproduces the serial golden value exactly (f64 bit pattern included).
#[test]
fn valency_estimate_is_thread_count_invariant() {
    let n = 12;
    let build = |threads: usize| {
        let protocol = SynRan::new();
        let mut world = World::new(
            SimConfig::new(n)
                .faults(n / 2)
                .seed(21)
                .max_rounds(5_000)
                .threads(threads),
            |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
        )
        .expect("valid config");
        world.phase_a().expect("phase A");
        world
    };
    let probes = ProbeSet::synran(n / 2);
    let golden = estimate_valency(&build(1), &probes, 3, 30, 17).expect("estimate");
    for threads in THREAD_COUNTS {
        let est = estimate_valency(&build(threads), &probes, 3, 30, 17).expect("estimate");
        assert_eq!(est, golden, "threads={threads}");
        assert_eq!(
            format!("{est:?}"),
            format!("{golden:?}"),
            "threads={threads}: debug repr must match bit-for-bit"
        );
    }
}

/// Seed batches are thread-count invariant, including the per-run seed
/// sequence and every verdict.
#[test]
fn run_batch_is_thread_count_invariant() {
    let n = 8;
    let protocol = SynRan::new();
    let cfg = |threads: usize| {
        SimConfig::new(n)
            .faults(n - 1)
            .max_rounds(50_000)
            .threads(threads)
    };
    let go = |threads: usize| {
        run_batch(
            &protocol,
            InputAssignment::Random,
            &cfg(threads),
            24,
            0xBA7C4,
            |seed| RandomKiller::new(2, seed),
        )
        .expect("batch")
    };
    let golden = go(1);
    for threads in THREAD_COUNTS {
        let out = go(threads);
        assert_eq!(
            format!("{out:?}"),
            format!("{golden:?}"),
            "threads={threads}"
        );
    }
}
