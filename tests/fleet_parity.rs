//! End-to-end contract of `synran campaign run --procs N` and its
//! network form `--workers addr,...`: the fleet supervisor must be
//! observationally identical to the in-process engine — byte-identical
//! journal and stdout for every process count and transport mix, under
//! an injected worker panic, under a hung worker killed by the per-cell
//! timeout, across a truncation-simulated crash resume, and (over TCP)
//! under a dropped connection mid-cell, a stalled agent whose late
//! result arrives after its lease was re-issued, and an agent killed and
//! restarted on the same port. A cell that fails permanently must leave
//! a structured failure, a kept sidecar, and a `campaign status` fleet
//! line — without sinking the campaign.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synran-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SPEC: &str = "\
campaign  = fparity
adversary = balancer
runs      = 3
seed      = 5
sweep n   = 8,10,12
sweep t   = half,max
";

fn write_spec(dir: &Path) -> PathBuf {
    let path = dir.join("fparity.campaign");
    std::fs::write(&path, SPEC).unwrap();
    path
}

/// Runs `synran campaign <sub> <spec> --results-dir <results> [extra]`
/// with the given environment.
fn campaign(
    sub: &str,
    spec: &Path,
    results: &Path,
    extra: &[&str],
    env: &[(&str, &str)],
) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_synran"));
    cmd.arg("campaign")
        .arg(sub)
        .arg(spec)
        .arg("--results-dir")
        .arg(results)
        .args(extra);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn synran")
}

fn journal(results: &Path) -> Vec<u8> {
    std::fs::read(results.join("fparity.journal.jsonl")).expect("journal written")
}

fn sidecar(results: &Path) -> PathBuf {
    results.join("fparity.fleet.jsonl")
}

#[test]
fn procs_1_2_4_are_byte_identical_to_the_engine() {
    let dir = tmpdir("procs");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success(), "{serial:?}");
    assert!(!serial.stdout.is_empty(), "campaign prints tables");

    for procs in ["1", "2", "4"] {
        let results = dir.join(format!("procs{procs}"));
        let fleet = campaign("run", &spec, &results, &["--procs", procs], &[]);
        assert!(fleet.status.success(), "--procs {procs}: {fleet:?}");
        assert_eq!(
            fleet.stdout, serial.stdout,
            "--procs {procs} stdout diverged"
        );
        assert_eq!(
            journal(&results),
            journal(&serial_results),
            "--procs {procs} journal diverged"
        );
        assert!(
            !sidecar(&results).exists(),
            "--procs {procs} left a sidecar after a clean run"
        );
    }
}

#[test]
fn injected_panic_retries_to_identical_output() {
    let dir = tmpdir("panic");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    let results = dir.join("fleet");
    let fleet = campaign(
        "run",
        &spec,
        &results,
        &["--procs", "2"],
        &[("SYNRAN_FLEET_FAULT", "panic:cell=1")],
    );
    assert!(fleet.status.success(), "{fleet:?}");
    assert_eq!(fleet.stdout, serial.stdout, "stdout diverged under panic");
    assert_eq!(journal(&results), journal(&serial_results));
    assert!(!sidecar(&results).exists());
}

#[test]
fn hung_worker_is_killed_by_the_cell_timeout_and_retried() {
    let dir = tmpdir("hang");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    let results = dir.join("fleet");
    let fleet = campaign(
        "run",
        &spec,
        &results,
        &["--procs", "2"],
        &[
            ("SYNRAN_FLEET_FAULT", "hang:cell=0"),
            // The hang heartbeats, so only the cell timeout can end it.
            ("SYNRAN_FLEET_TIMEOUT_MS", "300"),
        ],
    );
    assert!(fleet.status.success(), "{fleet:?}");
    assert_eq!(fleet.stdout, serial.stdout, "stdout diverged under hang");
    assert_eq!(journal(&results), journal(&serial_results));
}

#[test]
fn truncated_journal_resumes_under_the_fleet_to_identical_output() {
    let dir = tmpdir("resume");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    // First fleet pass, then simulate a crash: keep the header and two
    // cell lines, cutting the last kept line in half (a kill mid-append).
    let results = dir.join("fleet");
    let first = campaign("run", &spec, &results, &["--procs", "2"], &[]);
    assert!(first.status.success());
    let path = results.join("fparity.journal.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(3).collect();
    let mut cut = keep.join("\n");
    cut.truncate(cut.len() - 40);
    std::fs::write(&path, cut).unwrap();

    let resumed = campaign("resume", &spec, &results, &["--procs", "2"], &[]);
    assert!(resumed.status.success(), "{resumed:?}");
    assert_eq!(resumed.stdout, serial.stdout, "resumed stdout diverged");

    // The resumed journal holds a second header and re-appends what the
    // truncation destroyed; parsed through the real loader, its cache
    // must equal the serial journal's exactly.
    let resumed_scan = synran::lab::scan_journal(&path).unwrap();
    let serial_scan =
        synran::lab::scan_journal(&serial_results.join("fparity.journal.jsonl")).unwrap();
    assert_eq!(resumed_scan.cache, serial_scan.cache);
    assert_eq!(resumed_scan.rows.len(), serial_scan.rows.len());
}

#[test]
fn permanent_failure_keeps_the_sidecar_and_status_reports_it() {
    let dir = tmpdir("failure");
    let spec = write_spec(&dir);
    let results = dir.join("fleet");
    // A hang with a tight timeout and a single allowed attempt: cell 0
    // fails permanently; the rest of the campaign must still complete.
    let fleet = campaign(
        "run",
        &spec,
        &results,
        &["--procs", "2"],
        &[
            ("SYNRAN_FLEET_FAULT", "hang:cell=0"),
            ("SYNRAN_FLEET_TIMEOUT_MS", "300"),
            ("SYNRAN_FLEET_MAX_ATTEMPTS", "1"),
        ],
    );
    assert!(
        !fleet.status.success(),
        "a permanently failed cell must fail the run"
    );
    let stderr = String::from_utf8_lossy(&fleet.stderr);
    assert!(
        stderr.contains("failed permanently"),
        "structured failure missing: {stderr}"
    );
    assert!(sidecar(&results).exists(), "sidecar kept on failure");

    let status = campaign("status", &spec, &results, &[], &[]);
    assert!(status.status.success(), "{status:?}");
    let out = String::from_utf8_lossy(&status.stdout);
    assert!(out.contains("fleet      :"), "no fleet line in:\n{out}");
    assert!(
        out.contains("1 cells failed"),
        "failure tally missing:\n{out}"
    );

    // Every other cell still journalled: exactly one is missing.
    let text = String::from_utf8(journal(&results)).unwrap();
    let cells = text
        .lines()
        .filter(|l| l.contains("\"type\":\"cell\""))
        .count();
    assert_eq!(cells, 5, "5 of 6 cells journalled, the hung one failed");
}

// ─── TCP transport ───────────────────────────────────────────────────────
//
// The same contract over the network: `campaign agent` processes on
// loopback, supervisors pointed at them with `--workers`. Fault env vars
// go on the *agent* process only — local pipe workers inherit the
// supervisor's environment, so setting `SYNRAN_FLEET_FAULT` on the
// campaign would fault the wrong worker.

const TOKEN: &str = "fleet-parity-secret";

/// A `synran campaign agent` child on loopback, killed on drop.
struct Agent {
    child: Child,
    addr: String,
}

impl Drop for Agent {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_agent(port_file: &Path, listen: &str, env: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_synran"));
    cmd.arg("campaign")
        .arg("agent")
        .arg("--listen")
        .arg(listen)
        .arg("--token")
        .arg(TOKEN)
        .arg("--port-file")
        .arg(port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn agent")
}

/// Starts an agent and waits for its port file — the race-free way to
/// learn an ephemeral port. A bind lost to a transient race (rebinding a
/// just-freed fixed port) is retried until the deadline.
fn start_agent(dir: &Path, tag: &str, listen: &str, env: &[(&str, &str)]) -> Agent {
    let port_file = dir.join(format!("{tag}.port"));
    let _ = std::fs::remove_file(&port_file);
    let mut child = spawn_agent(&port_file, listen, env);
    let deadline = Instant::now() + Duration::from_secs(10);
    let addr = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            let text = text.trim().to_string();
            if !text.is_empty() {
                break text;
            }
        }
        if let Ok(Some(status)) = child.try_wait() {
            assert!(
                Instant::now() < deadline,
                "agent kept dying before binding: {status}"
            );
            std::thread::sleep(Duration::from_millis(50));
            child = spawn_agent(&port_file, listen, env);
        }
        assert!(Instant::now() < deadline, "agent never wrote its port file");
        std::thread::sleep(Duration::from_millis(10));
    };
    Agent { child, addr }
}

/// Like [`campaign`] but non-blocking: returns the `Child` so a test can
/// interleave agent lifecycle events with a running supervisor.
fn campaign_spawn(
    sub: &str,
    spec: &Path,
    results: &Path,
    extra: &[&str],
    env: &[(&str, &str)],
) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_synran"));
    cmd.arg("campaign")
        .arg(sub)
        .arg(spec)
        .arg("--results-dir")
        .arg(results)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn synran")
}

#[test]
fn tcp_remote_workers_are_byte_identical_to_the_engine() {
    let dir = tmpdir("tcp");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success(), "{serial:?}");

    for remotes in [1usize, 2] {
        for threads in ["1", "2"] {
            let agents: Vec<Agent> = (0..remotes)
                .map(|i| {
                    start_agent(
                        &dir,
                        &format!("r{remotes}t{threads}a{i}"),
                        "127.0.0.1:0",
                        &[],
                    )
                })
                .collect();
            let workers: Vec<String> = agents.iter().map(|a| a.addr.clone()).collect();
            let results = dir.join(format!("tcp-r{remotes}-t{threads}"));
            let fleet = campaign(
                "run",
                &spec,
                &results,
                &[
                    "--workers",
                    &workers.join(","),
                    "--token",
                    TOKEN,
                    "--threads",
                    threads,
                ],
                &[],
            );
            assert!(
                fleet.status.success(),
                "remotes={remotes} threads={threads}: {fleet:?}"
            );
            assert_eq!(
                fleet.stdout, serial.stdout,
                "remotes={remotes} threads={threads}: stdout diverged"
            );
            assert_eq!(
                journal(&results),
                journal(&serial_results),
                "remotes={remotes} threads={threads}: journal diverged"
            );
            assert!(
                !sidecar(&results).exists(),
                "remotes={remotes} threads={threads}: sidecar left after a clean run"
            );
        }
    }
}

#[test]
fn dropped_connection_mid_cell_reconnects_and_retries_cleanly() {
    let dir = tmpdir("dropconn");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    // The agent severs its socket mid-cell on the first lease of cell 1;
    // the fault fires on attempt 0 only, so the supervisor's backoff
    // reconnect finds the same (still-alive) agent and the retried lease
    // runs clean.
    let agent = start_agent(
        &dir,
        "drop",
        "127.0.0.1:0",
        &[("SYNRAN_FLEET_FAULT", "drop_conn:cell=1")],
    );
    let results = dir.join("fleet");
    let fleet = campaign(
        "run",
        &spec,
        &results,
        &["--workers", &agent.addr, "--token", TOKEN],
        &[("SYNRAN_FLEET_BACKOFF_MS", "50")],
    );
    assert!(fleet.status.success(), "{fleet:?}");
    assert_eq!(fleet.stdout, serial.stdout, "stdout diverged after drop");
    assert_eq!(journal(&results), journal(&serial_results));
    assert!(!sidecar(&results).exists());
}

#[test]
fn remote_panic_exhausts_reconnects_and_finishes_inline() {
    let dir = tmpdir("tcppanic");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    // A cell panic kills the agent *process*; with nothing listening,
    // reconnects are refused until the slot is given up and the
    // supervisor degrades to inline execution — still byte-identical.
    let agent = start_agent(
        &dir,
        "panic",
        "127.0.0.1:0",
        &[("SYNRAN_FLEET_FAULT", "panic:cell=1")],
    );
    let results = dir.join("fleet");
    let fleet = campaign(
        "run",
        &spec,
        &results,
        &["--workers", &agent.addr, "--token", TOKEN],
        &[
            ("SYNRAN_FLEET_BACKOFF_MS", "50"),
            ("SYNRAN_FLEET_CONNECT_ATTEMPTS", "2"),
            ("SYNRAN_FLEET_CONNECT_TIMEOUT_MS", "500"),
        ],
    );
    assert!(fleet.status.success(), "{fleet:?}");
    assert_eq!(fleet.stdout, serial.stdout, "stdout diverged after panic");
    assert_eq!(journal(&results), journal(&serial_results));
    assert!(!sidecar(&results).exists());
}

#[test]
fn stalled_agent_rejoins_and_its_late_result_is_discarded_as_stale() {
    let dir = tmpdir("stall");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    // The agent sleeps 1.5 s before executing cell 0 — silently, no
    // heartbeats — so the supervisor abandons the lease on a heartbeat
    // gap and half-closes the socket's write side. The agent eventually
    // wakes, executes, and sends the result anyway: it must drain into a
    // stale discard (the lease was re-issued), after which the agent
    // reads EOF, loops back to accept, and serves the reconnect that
    // re-runs the cell for real.
    let agent = start_agent(
        &dir,
        "stall",
        "127.0.0.1:0",
        &[("SYNRAN_FLEET_FAULT", "stall:cell=0,ms=1500")],
    );
    let results = dir.join("fleet");
    let fleet = campaign(
        "run",
        &spec,
        &results,
        &["--workers", &agent.addr, "--token", TOKEN],
        &[
            ("SYNRAN_FLEET_HEARTBEAT_MS", "100"),
            ("SYNRAN_FLEET_HEARTBEAT_TIMEOUT_MS", "400"),
            ("SYNRAN_FLEET_BACKOFF_MS", "50"),
            ("SYNRAN_FLEET_CONNECT_TIMEOUT_MS", "500"),
            ("SYNRAN_FLEET_CONNECT_ATTEMPTS", "20"),
        ],
    );
    assert!(fleet.status.success(), "{fleet:?}");
    assert_eq!(fleet.stdout, serial.stdout, "stdout diverged after stall");
    assert_eq!(journal(&results), journal(&serial_results));
    assert!(!sidecar(&results).exists());
}

#[test]
fn killed_agent_restarted_on_the_same_port_rejoins_the_campaign() {
    let dir = tmpdir("restart");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    // Agent #1 dies on the very first cell. The campaign is the lone
    // remote's only hope, so completion *proves* the supervisor's backoff
    // reconnect found agent #2 — started on the exact address agent #1
    // vacated — and replayed the lost lease there.
    let mut agent1 = start_agent(
        &dir,
        "gen1",
        "127.0.0.1:0",
        &[("SYNRAN_FLEET_FAULT", "panic:cell=0")],
    );
    let addr = agent1.addr.clone();
    let run = campaign_spawn(
        "run",
        &spec,
        &dir.join("fleet"),
        &["--workers", &addr, "--token", TOKEN],
        &[
            ("SYNRAN_FLEET_BACKOFF_MS", "100"),
            ("SYNRAN_FLEET_CONNECT_TIMEOUT_MS", "500"),
            ("SYNRAN_FLEET_CONNECT_ATTEMPTS", "10"),
        ],
    );
    agent1.child.wait().expect("agent1 exits on the panic");
    let _agent2 = start_agent(&dir, "gen2", &addr, &[]);

    let out = run.wait_with_output().expect("campaign finishes");
    assert!(
        out.status.success(),
        "campaign failed: stdout={} stderr={}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(out.stdout, serial.stdout, "stdout diverged after restart");
    assert_eq!(journal(&dir.join("fleet")), journal(&serial_results));
    assert!(!sidecar(&dir.join("fleet")).exists());
}
