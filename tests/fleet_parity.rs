//! End-to-end contract of `synran campaign run --procs N`: the fleet
//! supervisor must be observationally identical to the in-process engine
//! — byte-identical journal and stdout for every process count, under an
//! injected worker panic, under a hung worker killed by the per-cell
//! timeout, and across a truncation-simulated crash resume. A cell that
//! fails permanently must leave a structured failure, a kept sidecar,
//! and a `campaign status` fleet line — without sinking the campaign.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synran-fleet-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SPEC: &str = "\
campaign  = fparity
adversary = balancer
runs      = 3
seed      = 5
sweep n   = 8,10,12
sweep t   = half,max
";

fn write_spec(dir: &Path) -> PathBuf {
    let path = dir.join("fparity.campaign");
    std::fs::write(&path, SPEC).unwrap();
    path
}

/// Runs `synran campaign <sub> <spec> --results-dir <results> [extra]`
/// with the given environment.
fn campaign(
    sub: &str,
    spec: &Path,
    results: &Path,
    extra: &[&str],
    env: &[(&str, &str)],
) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_synran"));
    cmd.arg("campaign")
        .arg(sub)
        .arg(spec)
        .arg("--results-dir")
        .arg(results)
        .args(extra);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn synran")
}

fn journal(results: &Path) -> Vec<u8> {
    std::fs::read(results.join("fparity.journal.jsonl")).expect("journal written")
}

fn sidecar(results: &Path) -> PathBuf {
    results.join("fparity.fleet.jsonl")
}

#[test]
fn procs_1_2_4_are_byte_identical_to_the_engine() {
    let dir = tmpdir("procs");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success(), "{serial:?}");
    assert!(!serial.stdout.is_empty(), "campaign prints tables");

    for procs in ["1", "2", "4"] {
        let results = dir.join(format!("procs{procs}"));
        let fleet = campaign("run", &spec, &results, &["--procs", procs], &[]);
        assert!(fleet.status.success(), "--procs {procs}: {fleet:?}");
        assert_eq!(
            fleet.stdout, serial.stdout,
            "--procs {procs} stdout diverged"
        );
        assert_eq!(
            journal(&results),
            journal(&serial_results),
            "--procs {procs} journal diverged"
        );
        assert!(
            !sidecar(&results).exists(),
            "--procs {procs} left a sidecar after a clean run"
        );
    }
}

#[test]
fn injected_panic_retries_to_identical_output() {
    let dir = tmpdir("panic");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    let results = dir.join("fleet");
    let fleet = campaign(
        "run",
        &spec,
        &results,
        &["--procs", "2"],
        &[("SYNRAN_FLEET_FAULT", "panic:cell=1")],
    );
    assert!(fleet.status.success(), "{fleet:?}");
    assert_eq!(fleet.stdout, serial.stdout, "stdout diverged under panic");
    assert_eq!(journal(&results), journal(&serial_results));
    assert!(!sidecar(&results).exists());
}

#[test]
fn hung_worker_is_killed_by_the_cell_timeout_and_retried() {
    let dir = tmpdir("hang");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    let results = dir.join("fleet");
    let fleet = campaign(
        "run",
        &spec,
        &results,
        &["--procs", "2"],
        &[
            ("SYNRAN_FLEET_FAULT", "hang:cell=0"),
            // The hang heartbeats, so only the cell timeout can end it.
            ("SYNRAN_FLEET_TIMEOUT_MS", "300"),
        ],
    );
    assert!(fleet.status.success(), "{fleet:?}");
    assert_eq!(fleet.stdout, serial.stdout, "stdout diverged under hang");
    assert_eq!(journal(&results), journal(&serial_results));
}

#[test]
fn truncated_journal_resumes_under_the_fleet_to_identical_output() {
    let dir = tmpdir("resume");
    let spec = write_spec(&dir);
    let serial_results = dir.join("serial");
    let serial = campaign("run", &spec, &serial_results, &[], &[]);
    assert!(serial.status.success());

    // First fleet pass, then simulate a crash: keep the header and two
    // cell lines, cutting the last kept line in half (a kill mid-append).
    let results = dir.join("fleet");
    let first = campaign("run", &spec, &results, &["--procs", "2"], &[]);
    assert!(first.status.success());
    let path = results.join("fparity.journal.jsonl");
    let text = std::fs::read_to_string(&path).unwrap();
    let keep: Vec<&str> = text.lines().take(3).collect();
    let mut cut = keep.join("\n");
    cut.truncate(cut.len() - 40);
    std::fs::write(&path, cut).unwrap();

    let resumed = campaign("resume", &spec, &results, &["--procs", "2"], &[]);
    assert!(resumed.status.success(), "{resumed:?}");
    assert_eq!(resumed.stdout, serial.stdout, "resumed stdout diverged");

    // The resumed journal holds a second header and re-appends what the
    // truncation destroyed; parsed through the real loader, its cache
    // must equal the serial journal's exactly.
    let resumed_scan = synran::lab::scan_journal(&path).unwrap();
    let serial_scan =
        synran::lab::scan_journal(&serial_results.join("fparity.journal.jsonl")).unwrap();
    assert_eq!(resumed_scan.cache, serial_scan.cache);
    assert_eq!(resumed_scan.rows.len(), serial_scan.rows.len());
}

#[test]
fn permanent_failure_keeps_the_sidecar_and_status_reports_it() {
    let dir = tmpdir("failure");
    let spec = write_spec(&dir);
    let results = dir.join("fleet");
    // A hang with a tight timeout and a single allowed attempt: cell 0
    // fails permanently; the rest of the campaign must still complete.
    let fleet = campaign(
        "run",
        &spec,
        &results,
        &["--procs", "2"],
        &[
            ("SYNRAN_FLEET_FAULT", "hang:cell=0"),
            ("SYNRAN_FLEET_TIMEOUT_MS", "300"),
            ("SYNRAN_FLEET_MAX_ATTEMPTS", "1"),
        ],
    );
    assert!(
        !fleet.status.success(),
        "a permanently failed cell must fail the run"
    );
    let stderr = String::from_utf8_lossy(&fleet.stderr);
    assert!(
        stderr.contains("failed permanently"),
        "structured failure missing: {stderr}"
    );
    assert!(sidecar(&results).exists(), "sidecar kept on failure");

    let status = campaign("status", &spec, &results, &[], &[]);
    assert!(status.status.success(), "{status:?}");
    let out = String::from_utf8_lossy(&status.stdout);
    assert!(out.contains("fleet      :"), "no fleet line in:\n{out}");
    assert!(
        out.contains("1 cells failed"),
        "failure tally missing:\n{out}"
    );

    // Every other cell still journalled: exactly one is missing.
    let text = String::from_utf8(journal(&results)).unwrap();
    let cells = text
        .lines()
        .filter(|l| l.contains("\"type\":\"cell\""))
        .count();
    assert_eq!(cells, 5, "5 of 6 cells journalled, the hung one failed");
}
