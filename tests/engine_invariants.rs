//! Property tests on the engine itself: whatever (legal) interventions an
//! adversary throws, the simulator's structural invariants hold.

use synran::prelude::*;
use synran::sim::{Context, DeliveryFilter, Inbox, Process, ProcessStatus, SendPattern};

/// A probe process that records everything it observes, so the tests can
/// audit delivery behaviour from the receiving side.
#[derive(Debug, Clone, Default)]
struct Auditor {
    /// Per round: the sender ids observed.
    inbox_log: Vec<Vec<usize>>,
    rounds_seen: u32,
    lifetime: u32,
}

impl Auditor {
    fn new(lifetime: u32) -> Auditor {
        Auditor {
            lifetime,
            ..Auditor::default()
        }
    }
}

impl Process for Auditor {
    type Msg = u32;

    fn send(&mut self, ctx: &mut Context<'_>) -> SendPattern<u32> {
        SendPattern::Broadcast(ctx.pid().index() as u32)
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, inbox: &Inbox<u32>) {
        self.inbox_log
            .push(inbox.senders().map(ProcessId::index).collect());
        self.rounds_seen += 1;
    }

    fn decision(&self) -> Option<Bit> {
        (self.rounds_seen >= self.lifetime).then_some(Bit::Zero)
    }

    fn halted(&self) -> bool {
        self.rounds_seen >= self.lifetime
    }
}

/// A scripted adversary applying arbitrary-but-legal interventions.
#[derive(Debug, Clone)]
struct Scripted {
    script: Vec<Vec<(usize, u8, usize)>>, // per round: (victim, filter kind, param)
}

impl<P: Process> Adversary<P> for Scripted {
    fn intervene(&mut self, world: &World<P>) -> Intervention {
        let round = world.round().index() as usize - 1;
        let Some(kills) = self.script.get(round) else {
            return Intervention::none();
        };
        let mut iv = Intervention::new();
        let mut used = 0usize;
        for &(victim, kind, param) in kills {
            let victim = ProcessId::new(victim % world.n());
            if !world.status(victim).is_alive()
                || iv.kills().iter().any(|k| k.victim == victim)
                || used + 1 > world.budget().remaining()
                || world.alive_count() <= iv.kills().len() + 1
            {
                continue;
            }
            let filter = match kind % 4 {
                0 => DeliveryFilter::All,
                1 => DeliveryFilter::None,
                2 => DeliveryFilter::Prefix(param % (world.n() + 1)),
                _ => DeliveryFilter::To(
                    (0..world.n())
                        .filter(|i| (param >> (i % 8)) & 1 == 1)
                        .map(ProcessId::new)
                        .collect(),
                ),
            };
            iv = iv.kill(victim, filter);
            used += 1;
        }
        iv
    }
}

/// Draws an arbitrary intervention script from a deterministic generator:
/// up to 5 rounds, each with up to 3 `(victim, filter kind, param)` kills.
fn random_script(rng: &mut SimRng) -> Vec<Vec<(usize, u8, usize)>> {
    let rounds = rng.index(6);
    (0..rounds)
        .map(|_| {
            let kills = rng.index(4);
            (0..kills)
                .map(|_| (rng.index(32), (rng.next_u64() & 0xFF) as u8, rng.index(256)))
                .collect()
        })
        .collect()
}

/// Structural invariants across arbitrary legal intervention scripts:
/// inboxes are sorted and duplicate-free, alive processes always hear
/// themselves, per-receiver message counts never exceed the living
/// sender count, and statuses change monotonically.
///
/// Deterministic replacement for the former proptest: 64 cases drawn from
/// a fixed-seed [`SimRng`], so every CI run checks the same executions.
#[test]
fn engine_invariants_hold() {
    let mut gen = SimRng::new(0xE16_1E5);
    for case in 0..64 {
        let n = 2 + gen.index(14);
        let t = gen.index(16).min(n);
        let lifetime = 1 + gen.index(7) as u32;
        let seed = gen.next_u64();
        let script = random_script(&mut gen);
        let mut world = World::new(
            SimConfig::new(n).faults(t).seed(seed).max_rounds(100),
            |_| Auditor::new(lifetime),
        )
        .unwrap();
        let report = world.run(&mut Scripted { script }).unwrap();

        // Budget and status accounting.
        assert!(report.failed_count() <= t, "case {case}");
        assert_eq!(report.failed_count(), report.metrics().total_kills());

        let mut alive_per_round: Vec<usize> = Vec::new();
        let mut kills_by_round = vec![0usize; report.rounds() as usize + 1];
        for &(round, k) in report.metrics().kills_per_round() {
            kills_by_round[round.index() as usize - 1] = k;
        }
        let mut alive = n;
        #[allow(clippy::needless_range_loop)]
        for r in 0..report.rounds() as usize {
            alive_per_round.push(alive);
            alive -= kills_by_round[r].min(alive);
        }

        for (pid, p, status) in world.processes() {
            // A process that was never failed must have fully lived out
            // its scripted lifetime (or still be alive at the cap).
            match status {
                ProcessStatus::Failed(round) => {
                    // It stopped receiving the round it died.
                    assert!(p.rounds_seen <= round.index(), "case {case}");
                }
                ProcessStatus::Halted(_) => {
                    assert_eq!(p.rounds_seen, lifetime, "case {case}");
                }
                ProcessStatus::Alive => panic!("case {case}: run finished with {pid} alive"),
            }
            for (r, senders) in p.inbox_log.iter().enumerate() {
                // Sorted, duplicate-free senders.
                assert!(senders.windows(2).all(|w| w[0] < w[1]), "case {case}");
                // An alive receiver always hears itself (self-delivery can
                // only be cut by the receiver's own death, in which case
                // receive is never called).
                assert!(
                    senders.contains(&pid.index()),
                    "case {case}: {pid} missed its own message in round {}",
                    r + 1
                );
                // No more messages than processes alive at round start.
                assert!(senders.len() <= alive_per_round[r], "case {case}");
            }
        }
    }
}
