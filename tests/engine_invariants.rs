//! Property tests on the engine itself: whatever (legal) interventions an
//! adversary throws, the simulator's structural invariants hold.

use proptest::prelude::*;

use synran::prelude::*;
use synran::sim::{
    Context, DeliveryFilter, Inbox, Process, ProcessStatus, SendPattern,
};

/// A probe process that records everything it observes, so the tests can
/// audit delivery behaviour from the receiving side.
#[derive(Debug, Clone, Default)]
struct Auditor {
    /// Per round: the sender ids observed.
    inbox_log: Vec<Vec<usize>>,
    rounds_seen: u32,
    lifetime: u32,
}

impl Auditor {
    fn new(lifetime: u32) -> Auditor {
        Auditor {
            lifetime,
            ..Auditor::default()
        }
    }
}

impl Process for Auditor {
    type Msg = u32;

    fn send(&mut self, ctx: &mut Context<'_>) -> SendPattern<u32> {
        SendPattern::Broadcast(ctx.pid().index() as u32)
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, inbox: &Inbox<u32>) {
        self.inbox_log
            .push(inbox.senders().map(ProcessId::index).collect());
        self.rounds_seen += 1;
    }

    fn decision(&self) -> Option<Bit> {
        (self.rounds_seen >= self.lifetime).then_some(Bit::Zero)
    }

    fn halted(&self) -> bool {
        self.rounds_seen >= self.lifetime
    }
}

/// A scripted adversary applying arbitrary-but-legal interventions.
#[derive(Debug, Clone)]
struct Scripted {
    script: Vec<Vec<(usize, u8, usize)>>, // per round: (victim, filter kind, param)
}

impl<P: Process> Adversary<P> for Scripted {
    fn intervene(&mut self, world: &World<P>) -> Intervention {
        let round = world.round().index() as usize - 1;
        let Some(kills) = self.script.get(round) else {
            return Intervention::none();
        };
        let mut iv = Intervention::new();
        let mut used = 0usize;
        for &(victim, kind, param) in kills {
            let victim = ProcessId::new(victim % world.n());
            if !world.status(victim).is_alive()
                || iv.kills().iter().any(|k| k.victim == victim)
                || used + 1 > world.budget().remaining()
                || world.alive_count() <= iv.kills().len() + 1
            {
                continue;
            }
            let filter = match kind % 4 {
                0 => DeliveryFilter::All,
                1 => DeliveryFilter::None,
                2 => DeliveryFilter::Prefix(param % (world.n() + 1)),
                _ => DeliveryFilter::To(
                    (0..world.n())
                        .filter(|i| (param >> (i % 8)) & 1 == 1)
                        .map(ProcessId::new)
                        .collect(),
                ),
            };
            iv = iv.kill(victim, filter);
            used += 1;
        }
        iv
    }
}

fn script_strategy() -> impl Strategy<Value = Vec<Vec<(usize, u8, usize)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..32, any::<u8>(), 0usize..256), 0..4),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Structural invariants across arbitrary legal intervention scripts:
    /// inboxes are sorted and duplicate-free, alive processes always hear
    /// themselves, per-receiver message counts never exceed the living
    /// sender count, and statuses change monotonically.
    #[test]
    fn engine_invariants_hold(
        n in 2usize..16,
        t in 0usize..16,
        lifetime in 1u32..8,
        seed in any::<u64>(),
        script in script_strategy(),
    ) {
        let t = t.min(n);
        let mut world = World::new(
            SimConfig::new(n).faults(t).seed(seed).max_rounds(100),
            |_| Auditor::new(lifetime),
        ).unwrap();
        let report = world.run(&mut Scripted { script }).unwrap();

        // Budget and status accounting.
        prop_assert!(report.failed_count() <= t);
        prop_assert_eq!(
            report.failed_count(),
            report.metrics().total_kills()
        );

        let mut alive_per_round: Vec<usize> = Vec::new();
        let mut kills_by_round = vec![0usize; report.rounds() as usize + 1];
        for &(round, k) in report.metrics().kills_per_round() {
            kills_by_round[round.index() as usize - 1] = k;
        }
        let mut alive = n;
        #[allow(clippy::needless_range_loop)]
        for r in 0..report.rounds() as usize {
            alive_per_round.push(alive);
            alive -= kills_by_round[r].min(alive);
        }

        for (pid, p, status) in world.processes() {
            // A process that was never failed must have fully lived out
            // its scripted lifetime (or still be alive at the cap).
            match status {
                ProcessStatus::Failed(round) => {
                    // It stopped receiving the round it died.
                    prop_assert!(p.rounds_seen <= round.index());
                }
                ProcessStatus::Halted(_) => {
                    prop_assert_eq!(p.rounds_seen, lifetime);
                }
                ProcessStatus::Alive => prop_assert!(false, "run finished with {pid} alive"),
            }
            for (r, senders) in p.inbox_log.iter().enumerate() {
                // Sorted, duplicate-free senders.
                prop_assert!(senders.windows(2).all(|w| w[0] < w[1]));
                // An alive receiver always hears itself (self-delivery can
                // only be cut by the receiver's own death, in which case
                // receive is never called).
                prop_assert!(
                    senders.contains(&pid.index()),
                    "{pid} missed its own message in round {}",
                    r + 1
                );
                // No more messages than processes alive at round start.
                prop_assert!(senders.len() <= alive_per_round[r]);
            }
        }
    }
}
