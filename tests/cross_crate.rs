//! Cross-crate integration: full protocol executions spanning the whole
//! workspace — simulator + protocols + adversaries + checkers.

use synran::adversary::{estimate_valency, ProbeSet};
use synran::core::{ConsensusProtocol, SynRanProcess};
use synran::prelude::*;

fn split_inputs(n: usize) -> Vec<Bit> {
    (0..n).map(|i| Bit::from(i % 2 == 0)).collect()
}

#[test]
fn synran_correct_under_every_adversary_in_the_suite() {
    let n = 20;
    let t = n - 1;
    let rate = 4;
    type Mk = Box<dyn Fn(u64) -> Box<dyn Adversary<SynRanProcess>>>;
    let suite: Vec<(&str, Mk)> = vec![
        ("passive", Box::new(|_| Box::new(Passive))),
        (
            "random",
            Box::new(move |s| Box::new(RandomKiller::new(rate, s))),
        ),
        ("storm", Box::new(|s| Box::new(Storm::new(s)))),
        (
            "kill-ones",
            Box::new(move |_| Box::new(PreferenceKiller::new(Bit::One, rate))),
        ),
        (
            "kill-zeros",
            Box::new(move |_| Box::new(PreferenceKiller::new(Bit::Zero, rate))),
        ),
        ("balancer", Box::new(|_| Box::new(Balancer::unbounded()))),
        (
            "lower-bound",
            Box::new(|s| Box::new(LowerBoundAdversary::with_params(6, 2, 30, s))),
        ),
    ];
    for (name, factory) in &suite {
        for seed in 0..4u64 {
            let mut adversary = factory(seed);
            let verdict = check_consensus(
                &SynRan::new(),
                &split_inputs(n),
                SimConfig::new(n).faults(t).seed(seed).max_rounds(100_000),
                &mut adversary,
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "{name} seed {seed}: {:?}",
                verdict.violations()
            );
        }
    }
}

#[test]
fn flooding_correct_under_generic_adversaries() {
    let n = 12;
    for t in [0usize, 3, 6, 11] {
        for seed in 0..4u64 {
            let verdict = check_consensus(
                &FloodingConsensus::for_faults(t),
                &split_inputs(n),
                SimConfig::new(n).faults(t).seed(seed),
                &mut RandomKiller::new(2, seed),
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "t={t} seed {seed}: {:?}",
                verdict.violations()
            );
            assert_eq!(
                verdict.rounds(),
                t as u32 + 1,
                "flooding is exactly t+1 rounds"
            );
        }
    }
}

#[test]
fn storm_triggers_deterministic_stage_handover() {
    // Wipe out all but 2 of 36 in round 1: survivors must hand over to the
    // deterministic stage and still agree.
    let n = 36;
    let verdict = check_consensus(
        &SynRan::new(),
        &split_inputs(n),
        SimConfig::new(n).faults(n - 2).seed(3).max_rounds(10_000),
        &mut Storm::new(3),
    )
    .unwrap();
    assert!(verdict.is_correct(), "{:?}", verdict.violations());
    assert_eq!(verdict.report().failed_count(), n - 2);
    // The run must have outlived the handover (delay + flooding rounds).
    assert!(verdict.rounds() >= 3, "rounds = {}", verdict.rounds());
}

#[test]
fn unanimous_inputs_decide_that_value_under_attack() {
    for v in [Bit::Zero, Bit::One] {
        for seed in 0..5u64 {
            let n = 16;
            let verdict = check_consensus(
                &SynRan::new(),
                &vec![v; n],
                SimConfig::new(n)
                    .faults(n - 1)
                    .seed(seed)
                    .max_rounds(50_000),
                &mut Balancer::unbounded(),
            )
            .unwrap();
            assert!(verdict.is_correct());
            assert_eq!(
                verdict.report().unanimous_decision(),
                Some(v),
                "validity under attack, v = {v}, seed {seed}"
            );
        }
    }
}

#[test]
fn valency_estimates_agree_with_outcomes() {
    // A state the probes classify as 1-valent must, in fact, decide 1
    // under passive continuation.
    let n = 12;
    let protocol = SynRan::new();
    let mut world = World::new(
        SimConfig::new(n).faults(4).seed(9).max_rounds(10_000),
        |pid| protocol.spawn(pid, n, Bit::from(pid.index() < n / 2)),
    )
    .unwrap();
    let probes = ProbeSet::synran(4);
    let mut steps = 0;
    while !world.finished() && steps < 50 {
        world.phase_a().unwrap();
        let est = estimate_valency(&world, &probes, 8, 50, steps).unwrap();
        if est.min_p1() > 0.9 {
            // Claimed 1-valent: finish passively and check.
            let mut fork = world.fork(12345);
            let report = fork.run(&mut Passive).unwrap();
            assert_eq!(report.unanimous_decision(), Some(Bit::One));
            return;
        }
        if est.max_p1() < 0.1 {
            let mut fork = world.fork(12345);
            let report = fork.run(&mut Passive).unwrap();
            assert_eq!(report.unanimous_decision(), Some(Bit::Zero));
            return;
        }
        world.deliver(Intervention::none()).unwrap();
        steps += 1;
    }
    // The run decided before ever becoming confidently univalent — also
    // fine; just make sure it really finished.
    assert!(world.finished(), "run neither decided nor classified");
}

#[test]
fn handover_skew_cannot_break_agreement() {
    // The Lemma 4.3 corner: partial-delivery kills right at the
    // deterministic-stage threshold make one process observe
    // N < √(n/log n) a full round before the others, so the survivors
    // enter the flooding stage skewed by one round. The delay-round
    // union + the two slack flooding rounds (DESIGN.md hardening) must
    // absorb it.
    use synran::sim::{DeliveryFilter, Process};

    struct SkewAtThreshold;
    impl Adversary<synran::core::SynRanProcess> for SkewAtThreshold {
        fn intervene(&mut self, world: &World<synran::core::SynRanProcess>) -> Intervention {
            match world.round().index() {
                // Crash down to 5 survivors immediately.
                1 => Intervention::kill_all_silent(world.alive_ids().skip(5).collect::<Vec<_>>()),
                // Kill 2 of the 5, delivering their last messages ONLY to
                // the lowest-id survivor: it sees 3 messages (below the
                // threshold for n = 36), the rest see 3 as well... make it
                // asymmetric: deliver to the lowest two survivors so views
                // split 5 vs 3.
                2 => {
                    let alive: Vec<ProcessId> = world.alive_ids().collect();
                    if alive.len() < 5 || world.budget().remaining() < 2 {
                        return Intervention::none();
                    }
                    let witnesses = vec![alive[0], alive[1]];
                    Intervention::new()
                        .kill(alive[3], DeliveryFilter::To(witnesses.clone()))
                        .kill(alive[4], DeliveryFilter::To(witnesses))
                }
                _ => Intervention::none(),
            }
            .pipe_check(world)
        }
    }
    // Small helper so an over-budget plan degrades instead of erroring.
    trait PipeCheck {
        fn pipe_check<P: Process>(self, world: &World<P>) -> Intervention;
    }
    impl PipeCheck for Intervention {
        fn pipe_check<P: Process>(self, world: &World<P>) -> Intervention {
            if self.kills().len() <= world.budget().remaining() {
                self
            } else {
                Intervention::none()
            }
        }
    }

    for seed in 0..10u64 {
        for inputs in [
            vec![Bit::One; 36],
            (0..36).map(|i| Bit::from(i % 2 == 0)).collect::<Vec<_>>(),
        ] {
            let verdict = synran::core::check_consensus(
                &SynRan::new(),
                &inputs,
                SimConfig::new(36).faults(35).seed(seed).max_rounds(10_000),
                &mut SkewAtThreshold,
            )
            .unwrap();
            assert!(
                verdict.is_correct(),
                "seed {seed}: handover skew broke consensus: {:?}",
                verdict.violations()
            );
        }
    }
}

#[test]
fn deterministic_replay_across_the_whole_stack() {
    let run = |seed: u64| {
        let n = 18;
        let mut adversary = Balancer::unbounded();
        let verdict = check_consensus(
            &SynRan::new(),
            &split_inputs(n),
            SimConfig::new(n)
                .faults(n - 1)
                .seed(seed)
                .max_rounds(50_000),
            &mut adversary,
        )
        .unwrap();
        (
            verdict.rounds(),
            verdict.report().unanimous_decision(),
            verdict.report().metrics().total_kills(),
        )
    };
    assert_eq!(run(42), run(42), "same seed must replay identically");
}

#[test]
fn budget_is_never_exceeded_by_any_adversary() {
    let n = 24;
    for t in [1usize, 5, 12, 23] {
        let verdict = check_consensus(
            &SynRan::new(),
            &split_inputs(n),
            SimConfig::new(n).faults(t).seed(7).max_rounds(100_000),
            &mut Balancer::unbounded(),
        )
        .unwrap();
        assert!(verdict.is_correct());
        assert!(
            verdict.report().metrics().total_kills() <= t,
            "t = {t}: kills = {}",
            verdict.report().metrics().total_kills()
        );
    }
}
