//! End-to-end contract of `synran report`: rendering is a pure function
//! of the input file bytes (byte-identical across repeated invocations
//! and any `--threads` value), the folded output is a valid flamegraph
//! stack file, the table carries the self/child-time and
//! kill-budget-vs-cap columns, and `--check` tells healthy artifacts
//! from malformed or truncated ones with its exit code.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("synran-report-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn synran(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_synran"))
        .args(args)
        .output()
        .expect("spawn synran")
}

/// A healthy telemetry artifact: meta, counters, a histogram, a small
/// span tree (`world.drive` containing two `round.deliver`s and one
/// `round.flip`), and per-round kill accounting with one over-cap round.
fn healthy_fixture(dir: &Path) -> String {
    let path = dir.join("healthy.telemetry.jsonl");
    let lines = [
        r#"{"type":"meta","key":"experiment","value":"report-cli-fixture"}"#,
        r#"{"type":"meta","key":"n","value":"64"}"#,
        r#"{"type":"counter","name":"lab.cells.total","value":8}"#,
        r#"{"type":"counter","name":"lab.cells.executed","value":6}"#,
        r#"{"type":"counter","name":"lab.cells.cached","value":2}"#,
        r#"{"type":"counter","name":"lab.elapsed_ns","value":2000000000}"#,
        r#"{"type":"counter","name":"pool.spawned","value":4}"#,
        r#"{"type":"counter","name":"pool.reused","value":12}"#,
        r#"{"type":"histogram","name":"pool.utilization","count":4,"sum":320,"min":60,"max":95}"#,
        r#"{"type":"span","name":"world.drive","worker":null,"start_ns":0,"elapsed_ns":1000}"#,
        r#"{"type":"span","name":"round.deliver","worker":null,"start_ns":100,"elapsed_ns":200}"#,
        r#"{"type":"span","name":"round.deliver","worker":null,"start_ns":400,"elapsed_ns":200}"#,
        r#"{"type":"span","name":"round.flip","worker":null,"start_ns":700,"elapsed_ns":100}"#,
        r#"{"type":"round_kills","round":1,"kills":10,"cap":42,"over_cap":false}"#,
        r#"{"type":"round_kills","round":2,"kills":43,"cap":42,"over_cap":true}"#,
    ];
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    path.to_string_lossy().into_owned()
}

/// A truncated artifact: the final line was cut mid-write.
fn truncated_fixture(dir: &Path) -> String {
    let path = dir.join("truncated.telemetry.jsonl");
    let lines = [
        r#"{"type":"counter","name":"lab.cells.total","value":3}"#,
        r#"{"type":"span","name":"world.drive","worker":null,"start_ns":0,"elapsed"#,
    ];
    std::fs::write(&path, lines.join("\n") + "\n").unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn folded_output_is_a_valid_stack_file_and_reproducible() {
    let dir = tmpdir("folded");
    let fixture = healthy_fixture(&dir);
    let first = synran(&["report", "--format", "folded", &fixture]);
    assert!(first.status.success(), "{first:?}");
    let folded = String::from_utf8(first.stdout).unwrap();
    assert!(!folded.trim().is_empty());
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("stack<space>self_ns");
        assert!(!stack.is_empty());
        value.parse::<u64>().expect("numeric self-ns");
    }
    assert!(
        folded.contains("world.drive;round.deliver 400"),
        "nested self time folded under the parent stack:\n{folded}"
    );
    assert!(
        folded.contains("world.drive 500"),
        "parent keeps only its self time (1000 - 400 - 100):\n{folded}"
    );

    // Pure function of the input bytes: repeated invocations and any
    // --threads value produce byte-identical output.
    for extra in [
        &["--threads", "1"][..],
        &["--threads", "2"],
        &["--threads", "8"],
        &[],
    ] {
        let mut args = vec!["report", "--format", "folded", fixture.as_str()];
        args.extend_from_slice(extra);
        let again = synran(&args);
        assert!(again.status.success());
        assert_eq!(
            String::from_utf8(again.stdout).unwrap(),
            folded,
            "args: {extra:?}"
        );
    }
}

#[test]
fn table_carries_phase_and_kill_budget_columns() {
    let dir = tmpdir("table");
    let fixture = healthy_fixture(&dir);
    let out = synran(&["report", &fixture]);
    assert!(out.status.success(), "{out:?}");
    let table = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "## Phases",
        "self_ns",
        "child_ns",
        "## Kill budget vs cap",
        "over_cap",
        "world.drive",
        "round.deliver",
        "cap for n = 64",
    ] {
        assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
    }

    let json = synran(&["report", "--format", "json", &fixture]);
    assert!(json.status.success());
    let json = String::from_utf8(json.stdout).unwrap();
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"phases\"") && json.contains("\"round_kills\""));
}

#[test]
fn check_accepts_healthy_and_rejects_broken_artifacts() {
    let dir = tmpdir("check");
    let healthy = healthy_fixture(&dir);
    let ok = synran(&["report", "--check", &healthy]);
    assert!(ok.status.success(), "{ok:?}");
    assert!(String::from_utf8(ok.stdout).unwrap().contains("check: ok"));

    let truncated = truncated_fixture(&dir);
    let bad = synran(&["report", "--check", &truncated]);
    assert!(
        !bad.status.success(),
        "truncated artifact must fail --check"
    );

    // A journal whose tail was cut mid-entry is flagged too.
    let journal = dir.join("cut.journal.jsonl");
    std::fs::write(&journal, "{\"cell\":{\"protocol\":\"syn").unwrap();
    let bad = synran(&["report", "--check", journal.to_string_lossy().as_ref()]);
    assert!(!bad.status.success(), "cut journal must fail --check");
}

#[test]
fn fleet_sidecar_fixture_reports_transport_identity() {
    // A committed sidecar from a mixed pipe/TCP fleet whose slot 2 agent
    // dropped and rejoined on a new port: the report names each slot's
    // transport, the *latest* peer, and the reconnect count.
    let fixture = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/sample.fleet.jsonl")
        .to_string_lossy()
        .into_owned();
    let out = synran(&["report", &fixture]);
    assert!(out.status.success(), "{out:?}");
    let table = String::from_utf8(out.stdout).unwrap();
    for needle in [
        "## Fleet —",
        "pipe",
        "pid=4242",
        "10.0.0.7:7070",
        "10.0.0.8:7071",
        "3 procs, 1 leases outstanding, 1 restarts, 1 cells failed",
    ] {
        assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
    }
    assert!(
        !table.contains("10.0.0.8:7070"),
        "pre-rejoin peer must be superseded:\n{table}"
    );

    let json = synran(&["report", "--format", "json", &fixture]);
    assert!(json.status.success());
    let json = String::from_utf8(json.stdout).unwrap();
    assert!(
        json.contains(
            "{\"slot\":2,\"transport\":\"tcp\",\"peer\":\"10.0.0.8:7071\",\"connects\":2,\"reconnects\":1}"
        ),
        "{json}"
    );

    // --check treats the sidecar as accounting, never a failure.
    let check = synran(&["report", "--check", &fixture]);
    assert!(check.status.success(), "{check:?}");
    let text = String::from_utf8(check.stdout).unwrap();
    assert!(text.contains("3 workers"), "{text}");

    // Byte-identical on re-run — the purity contract extends to fleets.
    let again = synran(&["report", &fixture]);
    assert_eq!(String::from_utf8(again.stdout).unwrap(), table);
}

#[test]
fn report_without_inputs_is_an_error() {
    let out = synran(&["report"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("report"), "usage hint expected, got:\n{err}");
}
