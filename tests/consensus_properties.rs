//! Property-based tests: the consensus conditions hold for *arbitrary*
//! system sizes, fault budgets, input vectors, seeds, and adversary
//! schedules.
//!
//! Cases are drawn from fixed-seed [`SimRng`] generators rather than a
//! property-testing framework, so every CI run checks the same inputs and
//! failures reproduce by case index.

use synran::core::SynRanProcess;
use synran::prelude::*;

/// The adversaries a property case may draw.
#[derive(Debug, Clone)]
enum AdversaryChoice {
    Passive,
    Random { per_round: usize },
    Storm,
    KillOnes { per_round: usize },
    KillZeros { per_round: usize },
    Balancer,
    BalancerCapped { cap: usize },
}

impl AdversaryChoice {
    fn build(&self, seed: u64) -> Box<dyn Adversary<SynRanProcess> + Send> {
        match *self {
            AdversaryChoice::Passive => Box::new(Passive),
            AdversaryChoice::Random { per_round } => Box::new(RandomKiller::new(per_round, seed)),
            AdversaryChoice::Storm => Box::new(Storm::new(seed)),
            AdversaryChoice::KillOnes { per_round } => {
                Box::new(PreferenceKiller::new(Bit::One, per_round))
            }
            AdversaryChoice::KillZeros { per_round } => {
                Box::new(PreferenceKiller::new(Bit::Zero, per_round))
            }
            AdversaryChoice::Balancer => Box::new(Balancer::unbounded()),
            AdversaryChoice::BalancerCapped { cap } => Box::new(Balancer::with_cap(cap)),
        }
    }
}

/// Draws an adversary, covering every variant with the same parameter
/// ranges the former proptest strategy used.
fn random_adversary(rng: &mut SimRng) -> AdversaryChoice {
    match rng.index(7) {
        0 => AdversaryChoice::Passive,
        1 => AdversaryChoice::Random {
            per_round: 1 + rng.index(4),
        },
        2 => AdversaryChoice::Storm,
        3 => AdversaryChoice::KillOnes {
            per_round: 1 + rng.index(4),
        },
        4 => AdversaryChoice::KillZeros {
            per_round: 1 + rng.index(4),
        },
        5 => AdversaryChoice::Balancer,
        _ => AdversaryChoice::BalancerCapped {
            cap: 1 + rng.index(7),
        },
    }
}

/// A uniform fraction in `[0, 1)`.
fn unit_fraction(rng: &mut SimRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Agreement + termination for arbitrary inputs, budgets, seeds, and
/// adversaries. (Validity is checked by the checker too whenever the
/// drawn inputs happen to be unanimous.)
#[test]
fn synran_is_correct() {
    let mut gen = SimRng::new(0xC0221);
    for _case in 0..48 {
        let n = 2 + gen.index(22);
        let t = ((n as f64) * unit_fraction(&mut gen)) as usize;
        let inputs: Vec<Bit> = (0..n).map(|_| gen.bit()).collect();
        let seed = gen.next_u64();
        let choice = random_adversary(&mut gen);
        let mut adversary = choice.build(seed);
        let verdict = check_consensus(
            &SynRan::new(),
            &inputs,
            SimConfig::new(n)
                .faults(t.min(n))
                .seed(seed)
                .max_rounds(50_000),
            &mut adversary,
        )
        .unwrap();
        assert!(
            verdict.is_correct(),
            "n={n} t={t} {choice:?}: {:?}",
            verdict.violations()
        );
    }
}

/// Flooding is correct and takes exactly t+1 rounds under generic
/// adversaries.
#[test]
fn flooding_is_correct_and_exact() {
    let mut gen = SimRng::new(0xF100D);
    for _case in 0..48 {
        let n = 2 + gen.index(14);
        let t = (((n - 1) as f64) * unit_fraction(&mut gen)) as usize;
        let inputs: Vec<Bit> = (0..n).map(|_| gen.bit()).collect();
        let seed = gen.next_u64();
        let per_round = 1 + gen.index(3);
        let verdict = check_consensus(
            &FloodingConsensus::for_faults(t),
            &inputs,
            SimConfig::new(n).faults(t).seed(seed),
            &mut RandomKiller::new(per_round, seed),
        )
        .unwrap();
        assert!(verdict.is_correct(), "{:?}", verdict.violations());
        assert_eq!(verdict.rounds(), t as u32 + 1);
    }
}

/// The engine never lets any adversary overspend its budget, and the
/// reported kill count matches the failed-process count.
#[test]
fn fault_accounting_is_exact() {
    let mut gen = SimRng::new(0xFA017);
    for _case in 0..48 {
        let n = 2 + gen.index(18);
        let t = gen.index(20).min(n);
        let seed = gen.next_u64();
        let choice = random_adversary(&mut gen);
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
        let mut adversary = choice.build(seed);
        let verdict = check_consensus(
            &SynRan::new(),
            &inputs,
            SimConfig::new(n).faults(t).seed(seed).max_rounds(50_000),
            &mut adversary,
        )
        .unwrap();
        let kills = verdict.report().metrics().total_kills();
        assert!(kills <= t, "kills {kills} > budget {t}");
        assert_eq!(kills, verdict.report().failed_count());
    }
}

/// Replay determinism across the full stack: identical seeds give
/// identical executions.
#[test]
fn replay_is_deterministic() {
    let mut gen = SimRng::new(0x2E71A);
    for _case in 0..48 {
        let n = 2 + gen.index(14);
        let seed = gen.next_u64();
        let choice = random_adversary(&mut gen);
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 3 == 0)).collect();
        let run = || {
            let mut adversary = choice.build(seed);
            let verdict = check_consensus(
                &SynRan::new(),
                &inputs,
                SimConfig::new(n)
                    .faults(n - 1)
                    .seed(seed)
                    .max_rounds(50_000),
                &mut adversary,
            )
            .unwrap();
            (verdict.rounds(), verdict.report().decisions().to_vec())
        };
        assert_eq!(run(), run());
    }
}

/// Unanimous inputs always decide that exact value (Validity), even
/// under the strongest stalling attack.
#[test]
fn validity_under_balancer() {
    let mut gen = SimRng::new(0x7A11D);
    for _case in 0..48 {
        let n = 2 + gen.index(18);
        let v = gen.bit();
        let seed = gen.next_u64();
        let verdict = check_consensus(
            &SynRan::new(),
            &vec![v; n],
            SimConfig::new(n)
                .faults(n - 1)
                .seed(seed)
                .max_rounds(50_000),
            &mut Balancer::unbounded(),
        )
        .unwrap();
        assert!(verdict.is_correct(), "{:?}", verdict.violations());
        assert_eq!(verdict.report().unanimous_decision(), Some(v));
    }
}
