//! Property-based tests: the consensus conditions hold for *arbitrary*
//! system sizes, fault budgets, input vectors, seeds, and adversary
//! schedules.

use proptest::prelude::*;

use synran::core::SynRanProcess;
use synran::prelude::*;

/// The adversaries a property case may draw.
#[derive(Debug, Clone)]
enum AdversaryChoice {
    Passive,
    Random { per_round: usize },
    Storm,
    KillOnes { per_round: usize },
    KillZeros { per_round: usize },
    Balancer,
    BalancerCapped { cap: usize },
}

impl AdversaryChoice {
    fn build(&self, seed: u64) -> Box<dyn Adversary<SynRanProcess>> {
        match *self {
            AdversaryChoice::Passive => Box::new(Passive),
            AdversaryChoice::Random { per_round } => {
                Box::new(RandomKiller::new(per_round, seed))
            }
            AdversaryChoice::Storm => Box::new(Storm::new(seed)),
            AdversaryChoice::KillOnes { per_round } => {
                Box::new(PreferenceKiller::new(Bit::One, per_round))
            }
            AdversaryChoice::KillZeros { per_round } => {
                Box::new(PreferenceKiller::new(Bit::Zero, per_round))
            }
            AdversaryChoice::Balancer => Box::new(Balancer::unbounded()),
            AdversaryChoice::BalancerCapped { cap } => Box::new(Balancer::with_cap(cap)),
        }
    }
}

fn adversary_strategy() -> impl Strategy<Value = AdversaryChoice> {
    prop_oneof![
        Just(AdversaryChoice::Passive),
        (1usize..5).prop_map(|per_round| AdversaryChoice::Random { per_round }),
        Just(AdversaryChoice::Storm),
        (1usize..5).prop_map(|per_round| AdversaryChoice::KillOnes { per_round }),
        (1usize..5).prop_map(|per_round| AdversaryChoice::KillZeros { per_round }),
        Just(AdversaryChoice::Balancer),
        (1usize..8).prop_map(|cap| AdversaryChoice::BalancerCapped { cap }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    /// Agreement + termination for arbitrary inputs, budgets, seeds, and
    /// adversaries. (Validity is checked by the checker too whenever the
    /// drawn inputs happen to be unanimous.)
    #[test]
    fn synran_is_correct(
        n in 2usize..24,
        t_frac in 0.0f64..1.0,
        input_bits in proptest::collection::vec(any::<bool>(), 24),
        seed in any::<u64>(),
        choice in adversary_strategy(),
    ) {
        let t = ((n as f64) * t_frac) as usize;
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(input_bits[i])).collect();
        let mut adversary = choice.build(seed);
        let verdict = check_consensus(
            &SynRan::new(),
            &inputs,
            SimConfig::new(n).faults(t.min(n)).seed(seed).max_rounds(50_000),
            &mut adversary,
        ).unwrap();
        prop_assert!(
            verdict.is_correct(),
            "n={n} t={t} {choice:?}: {:?}",
            verdict.violations()
        );
    }

    /// Flooding is correct and takes exactly t+1 rounds under generic
    /// adversaries.
    #[test]
    fn flooding_is_correct_and_exact(
        n in 2usize..16,
        t_frac in 0.0f64..1.0,
        input_bits in proptest::collection::vec(any::<bool>(), 16),
        seed in any::<u64>(),
        per_round in 1usize..4,
    ) {
        let t = (((n - 1) as f64) * t_frac) as usize;
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(input_bits[i])).collect();
        let verdict = check_consensus(
            &FloodingConsensus::for_faults(t),
            &inputs,
            SimConfig::new(n).faults(t).seed(seed),
            &mut RandomKiller::new(per_round, seed),
        ).unwrap();
        prop_assert!(verdict.is_correct(), "{:?}", verdict.violations());
        prop_assert_eq!(verdict.rounds(), t as u32 + 1);
    }

    /// The engine never lets any adversary overspend its budget, and the
    /// reported kill count matches the failed-process count.
    #[test]
    fn fault_accounting_is_exact(
        n in 2usize..20,
        t in 0usize..20,
        seed in any::<u64>(),
        choice in adversary_strategy(),
    ) {
        let t = t.min(n);
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
        let mut adversary = choice.build(seed);
        let verdict = check_consensus(
            &SynRan::new(),
            &inputs,
            SimConfig::new(n).faults(t).seed(seed).max_rounds(50_000),
            &mut adversary,
        ).unwrap();
        let kills = verdict.report().metrics().total_kills();
        prop_assert!(kills <= t, "kills {kills} > budget {t}");
        prop_assert_eq!(kills, verdict.report().failed_count());
    }

    /// Replay determinism across the full stack: identical seeds give
    /// identical executions.
    #[test]
    fn replay_is_deterministic(
        n in 2usize..16,
        seed in any::<u64>(),
        choice in adversary_strategy(),
    ) {
        let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 3 == 0)).collect();
        let run = || {
            let mut adversary = choice.build(seed);
            let verdict = check_consensus(
                &SynRan::new(),
                &inputs,
                SimConfig::new(n).faults(n - 1).seed(seed).max_rounds(50_000),
                &mut adversary,
            ).unwrap();
            (verdict.rounds(), verdict.report().decisions().to_vec())
        };
        prop_assert_eq!(run(), run());
    }

    /// Unanimous inputs always decide that exact value (Validity), even
    /// under the strongest stalling attack.
    #[test]
    fn validity_under_balancer(
        n in 2usize..20,
        v in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let v = Bit::from(v);
        let verdict = check_consensus(
            &SynRan::new(),
            &vec![v; n],
            SimConfig::new(n).faults(n - 1).seed(seed).max_rounds(50_000),
            &mut Balancer::unbounded(),
        ).unwrap();
        prop_assert!(verdict.is_correct(), "{:?}", verdict.violations());
        prop_assert_eq!(verdict.report().unanimous_decision(), Some(v));
    }
}
