//! Miniature versions of the experiment suite (E1–E10), asserting the qualitative
//! *shapes* the paper proves. The full harnesses live in
//! `crates/bench/src/bin/`; these keep the shapes under `cargo test`.

use synran::adversary::{Balancer, RandomKiller};
use synran::analysis::{lemma_4_4_bound, Binomial, ShapeFit};
use synran::coin::{
    bias_radius, estimate_control, schechtman_bound, CombinedHider, GreedyHider, HypercubeSet,
    MajorityGame, Outcome,
};
use synran::core::{run_batch, FloodingConsensus, InputAssignment, SynRan};
use synran::sim::{Passive, SimConfig, SimRng};

/// E1 in miniature: majority-0 is controlled toward 0 (and only 0) once
/// the hide budget passes ~√(n·ln n).
#[test]
fn e1_majority_controlled_one_way() {
    let n = 51;
    let t = bias_radius(n).ceil() as usize; // > the one-outcome threshold
    let game = MajorityGame::new(n);
    let mut rng = SimRng::new(1);
    let est = estimate_control(&game, &GreedyHider, t.min(n), 200, &mut rng);
    assert!(est.forcible_fraction(Outcome(0)) > 1.0 - 1.0 / n as f64);
    assert!(
        est.forcible_fraction(Outcome(1)) < 0.7,
        "1 must stay unforcible"
    );
    assert_eq!(
        est.controlled_outcome(1.0 - 1.0 / n as f64),
        Some(Outcome(0))
    );
}

/// E1's impossibility half, exactly: no hide-set ever forces majority to 1
/// from a 0-majority input.
#[test]
fn e1_majority_never_forced_to_one() {
    let n = 9;
    let game = MajorityGame::new(n);
    let searcher = CombinedHider::default();
    use synran::coin::{HideSearch, SearchOutcome};
    let values = [0, 0, 0, 0, 0, 1, 1, 1, 1];
    assert_eq!(
        searcher.force(&game, &values, n, Outcome(1)),
        SearchOutcome::Impossible
    );
}

/// E2 in miniature: the Schechtman bound holds exactly on a small cube.
#[test]
fn e2_blowup_bound_holds() {
    let n = 12u32;
    let mut rng = SimRng::new(2);
    for density in [0.02f64, 0.3] {
        let a = HypercubeSet::random(n, density, &mut rng);
        if a.is_empty() {
            continue;
        }
        let alpha = a.measure();
        for l in 0..=n {
            assert!(a.blow_up(l).measure() + 1e-12 >= schechtman_bound(n as usize, alpha, l));
        }
    }
}

/// E3/E4 in miniature: the balancer forces more rounds than passive play,
/// at every tested size, without ever breaking safety.
#[test]
fn e3_e4_balancer_stalls_but_safely() {
    for n in [16usize, 32] {
        let cfg = SimConfig::new(n).faults(n - 1).max_rounds(100_000);
        let passive = run_batch(
            &SynRan::new(),
            InputAssignment::even_split(n),
            &cfg,
            10,
            3,
            |_| Passive,
        )
        .unwrap();
        let attacked = run_batch(
            &SynRan::new(),
            InputAssignment::even_split(n),
            &cfg,
            10,
            3,
            |_| Balancer::unbounded(),
        )
        .unwrap();
        assert!(passive.all_correct() && attacked.all_correct());
        assert!(
            attacked.mean_rounds() > passive.mean_rounds(),
            "n={n}: {} vs {}",
            attacked.mean_rounds(),
            passive.mean_rounds()
        );
    }
}

/// E5 in miniature: flooding takes exactly t+1 rounds while SynRan stays
/// sublinear — the crossover of the paper's introduction.
#[test]
fn e5_crossover_shape() {
    let n = 32;
    let t = n - 1;
    let cfg = SimConfig::new(n).faults(t).max_rounds(100_000);
    let flooding = run_batch(
        &FloodingConsensus::for_faults(t),
        InputAssignment::even_split(n),
        &cfg,
        5,
        4,
        |s| RandomKiller::new(3, s),
    )
    .unwrap();
    let synran = run_batch(
        &SynRan::new(),
        InputAssignment::even_split(n),
        &cfg,
        5,
        4,
        |s| RandomKiller::new(3, s),
    )
    .unwrap();
    assert!(flooding.all_correct() && synran.all_correct());
    assert_eq!(flooding.mean_rounds(), t as f64 + 1.0);
    assert!(
        synran.mean_rounds() < flooding.mean_rounds() / 1.5,
        "SynRan ({}) must beat flooding ({}) at t = n − 1",
        synran.mean_rounds(),
        flooding.mean_rounds()
    );
}

/// E6 in miniature: the exact binomial tail dominates Lemma 4.4's bound.
#[test]
fn e6_large_deviation_bound_holds() {
    for n in [100usize, 900] {
        let b = Binomial::fair(n);
        let sqrt_n = (n as f64).sqrt();
        for t in [0.0f64, 0.5, 1.0] {
            assert!(b.deviation_tail(t * sqrt_n) >= lemma_4_4_bound(t));
        }
    }
}

/// E7 in miniature: rounds grow with t (monotone trend up to noise) and
/// the growth is far slower than linear.
#[test]
fn e7_sublinear_growth_in_t() {
    let n = 64;
    let mut means = Vec::new();
    for t in [4usize, 16, 63] {
        let outcome = run_batch(
            &SynRan::new(),
            InputAssignment::even_split(n),
            &SimConfig::new(n).faults(t).max_rounds(100_000),
            10,
            5,
            |_| Balancer::unbounded(),
        )
        .unwrap();
        assert!(outcome.all_correct());
        means.push(outcome.mean_rounds());
    }
    // Sublinear: 16x more faults must cost far less than 16x more rounds.
    assert!(
        means[2] < means[0] * 8.0,
        "rounds grew superlinearly: {means:?}"
    );
}

/// E8 in miniature: the adversary's total spend correlates with the rounds
/// it buys — stalling is paid for, never free.
#[test]
fn e8_stalling_is_paid_for() {
    let n = 48;
    let outcome = run_batch(
        &SynRan::new(),
        InputAssignment::even_split(n),
        &SimConfig::new(n).faults(n - 1).max_rounds(100_000),
        12,
        6,
        |_| Balancer::unbounded(),
    )
    .unwrap();
    assert!(outcome.all_correct());
    // Fit rounds ≈ scale · kills: the relationship must be positive.
    let rounds: Vec<f64> = outcome.rounds().iter().map(|&r| f64::from(r)).collect();
    let kills: Vec<f64> = outcome.kills().iter().map(|&k| k as f64 + 1.0).collect();
    let fit = ShapeFit::fit(&rounds, &kills);
    assert!(fit.scale() > 0.0);
    // And long runs require kills: every run that beat the passive
    // baseline by 3x spent something.
    for (r, k) in outcome.rounds().iter().zip(outcome.kills()) {
        if *r > 15 {
            assert!(*k > 0, "a {r}-round stall with zero kills?");
        }
    }
}
