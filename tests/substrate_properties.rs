//! Property tests on the substrate crates: coin-game searchers, blow-up
//! machinery, RNG, and message primitives.

use proptest::prelude::*;

use synran::coin::{
    with_hidden, CoinGame, CombinedHider, ExhaustiveHider, GreedyHider, HideSearch,
    HypercubeSet, MajorityGame, ModKGame, OneSidedGame, Outcome, ParityGame,
    RecursiveMajorityGame, SearchOutcome, ThresholdGame, TribesGame,
};
use synran::sim::{Bit, Inbox, ProcessId, SimRng};

#[derive(Debug, Clone)]
enum GameChoice {
    Majority(usize),
    Parity(usize),
    OneSided(usize),
    Threshold(usize, usize),
    Tribes(usize, usize),
    ModK(usize, usize),
    RecursiveMajority(u32),
}

impl GameChoice {
    fn build(&self) -> Box<dyn CoinGame> {
        match *self {
            GameChoice::Majority(n) => Box::new(MajorityGame::new(n)),
            GameChoice::Parity(n) => Box::new(ParityGame::new(n)),
            GameChoice::OneSided(n) => Box::new(OneSidedGame::new(n)),
            GameChoice::Threshold(n, q) => Box::new(ThresholdGame::new(n, q)),
            GameChoice::Tribes(b, w) => Box::new(TribesGame::new(b, w)),
            GameChoice::ModK(n, k) => Box::new(ModKGame::new(n, k)),
            GameChoice::RecursiveMajority(d) => Box::new(RecursiveMajorityGame::new(d)),
        }
    }
}

fn game_strategy() -> impl Strategy<Value = GameChoice> {
    prop_oneof![
        (1usize..12).prop_map(GameChoice::Majority),
        (1usize..12).prop_map(GameChoice::Parity),
        (1usize..12).prop_map(GameChoice::OneSided),
        (2usize..12).prop_flat_map(|n| (Just(n), 1..=n).prop_map(|(n, q)| GameChoice::Threshold(n, q))),
        ((1usize..4), (1usize..4)).prop_map(|(b, w)| GameChoice::Tribes(b, w)),
        ((1usize..8), (2usize..5)).prop_map(|(n, k)| GameChoice::ModK(n, k)),
        (1u32..3).prop_map(GameChoice::RecursiveMajority),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Soundness: whatever a searcher claims to force, re-evaluating the
    /// game under the returned hide-set confirms — and the set respects
    /// the budget.
    #[test]
    fn searchers_are_sound(
        choice in game_strategy(),
        seed in any::<u64>(),
        t_frac in 0.0f64..1.0,
        target_idx in 0usize..5,
    ) {
        let game = choice.build();
        let n = game.players();
        let t = ((n as f64) * t_frac) as usize;
        let target = Outcome(target_idx % game.outcomes());
        let mut rng = SimRng::new(seed);
        let values = synran::coin::sample_inputs(game.as_ref(), &mut rng);

        for result in [
            GreedyHider.force(game.as_ref(), &values, t, target),
            ExhaustiveHider::default().force(game.as_ref(), &values, t, target),
            CombinedHider::default().force(game.as_ref(), &values, t, target),
        ] {
            if let SearchOutcome::Forced(set) = result {
                prop_assert!(set.len() <= t, "hide-set larger than budget");
                let mut sorted = set.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), set.len(), "duplicate hides");
                prop_assert_eq!(game.outcome(&with_hidden(&values, &set)), target);
            }
        }
    }

    /// Completeness of the exact searcher relative to greedy: greedy can
    /// never find a forcing set the exhaustive search misses.
    #[test]
    fn exhaustive_dominates_greedy(
        choice in game_strategy(),
        seed in any::<u64>(),
        t in 0usize..4,
    ) {
        let game = choice.build();
        let mut rng = SimRng::new(seed);
        let values = synran::coin::sample_inputs(game.as_ref(), &mut rng);
        for v in 0..game.outcomes() {
            let greedy = GreedyHider.force(game.as_ref(), &values, t, Outcome(v));
            let exact = ExhaustiveHider::default().force(game.as_ref(), &values, t, Outcome(v));
            if greedy.is_forced() {
                prop_assert!(exact.is_forced());
            }
            if exact == SearchOutcome::Impossible {
                prop_assert!(!greedy.is_forced());
            }
        }
    }

    /// Blow-up is monotone, extensive, and saturates at the full cube.
    #[test]
    fn blowup_invariants(
        n in 1u32..10,
        density in 0.0f64..1.0,
        seed in any::<u64>(),
        l1 in 0u32..10,
        l2 in 0u32..10,
    ) {
        let mut rng = SimRng::new(seed);
        let a = HypercubeSet::random(n, density, &mut rng);
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let b_lo = a.blow_up(lo.min(n));
        let b_hi = a.blow_up(hi.min(n));
        // Extensive: A ⊆ B(A, l). Monotone: B(A, lo) ⊆ B(A, hi).
        for p in a.points() {
            prop_assert!(b_lo.contains(p));
        }
        for p in b_lo.points() {
            prop_assert!(b_hi.contains(p));
        }
        if !a.is_empty() {
            prop_assert_eq!(a.blow_up(n).count(), 1u64 << n, "radius n covers the cube");
        }
    }

    /// The RNG's bounded draw is unbiased enough to always stay in range,
    /// and distinct streams never alias for distinct coordinates.
    #[test]
    fn rng_invariants(seed in any::<u64>(), bound in 1u64..1000, draws in 1usize..50) {
        let mut rng = SimRng::new(seed);
        for _ in 0..draws {
            prop_assert!(rng.below(bound) < bound);
        }
        let a = SimRng::stream(seed, ProcessId::new(1), synran::sim::Round::new(2),
                               synran::sim::StreamPhase::Send);
        let b = SimRng::stream(seed, ProcessId::new(2), synran::sim::Round::new(1),
                               synran::sim::StreamPhase::Send);
        prop_assert_ne!(a, b, "stream collision across coordinates");
    }

    /// Inboxes built from arbitrary unordered input sort by sender and
    /// answer lookups consistently.
    #[test]
    fn inbox_invariants(senders in proptest::collection::btree_set(0usize..64, 0..20)) {
        let inbox: Inbox<Bit> = senders
            .iter()
            .rev() // feed in descending order to exercise the sort
            .map(|&s| (ProcessId::new(s), Bit::from(s % 2 == 0)))
            .collect();
        prop_assert_eq!(inbox.len(), senders.len());
        let mut last = None;
        for (s, m) in inbox.iter() {
            prop_assert!(last.is_none_or(|l| l < *s), "not ascending");
            prop_assert_eq!(inbox.from(*s), Some(m));
            last = Some(*s);
        }
        prop_assert_eq!(
            inbox.count_where(|m| m.is_one()),
            senders.iter().filter(|s| *s % 2 == 0).count()
        );
    }

    /// Sampling k distinct indices really gives k distinct in-range
    /// indices, for all k ≤ len.
    #[test]
    fn sample_indices_invariants(seed in any::<u64>(), len in 1usize..64, k_frac in 0.0f64..=1.0) {
        let k = ((len as f64) * k_frac) as usize;
        let mut rng = SimRng::new(seed);
        let sample = rng.sample_indices(len, k);
        prop_assert_eq!(sample.len(), k);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k);
        prop_assert!(sample.iter().all(|&i| i < len));
    }
}
