//! Property tests on the substrate crates: coin-game searchers, blow-up
//! machinery, RNG, and message primitives.
//!
//! Cases are drawn from fixed-seed [`SimRng`] generators rather than a
//! property-testing framework, so every CI run checks the same inputs and
//! failures reproduce by case index.

use synran::coin::{
    with_hidden, CoinGame, CombinedHider, ExhaustiveHider, GreedyHider, HideSearch, HypercubeSet,
    MajorityGame, ModKGame, OneSidedGame, Outcome, ParityGame, RecursiveMajorityGame,
    SearchOutcome, ThresholdGame, TribesGame,
};
use synran::sim::{Bit, Inbox, ProcessId, SimRng};

#[derive(Debug, Clone)]
enum GameChoice {
    Majority(usize),
    Parity(usize),
    OneSided(usize),
    Threshold(usize, usize),
    Tribes(usize, usize),
    ModK(usize, usize),
    RecursiveMajority(u32),
}

impl GameChoice {
    fn build(&self) -> Box<dyn CoinGame> {
        match *self {
            GameChoice::Majority(n) => Box::new(MajorityGame::new(n)),
            GameChoice::Parity(n) => Box::new(ParityGame::new(n)),
            GameChoice::OneSided(n) => Box::new(OneSidedGame::new(n)),
            GameChoice::Threshold(n, q) => Box::new(ThresholdGame::new(n, q)),
            GameChoice::Tribes(b, w) => Box::new(TribesGame::new(b, w)),
            GameChoice::ModK(n, k) => Box::new(ModKGame::new(n, k)),
            GameChoice::RecursiveMajority(d) => Box::new(RecursiveMajorityGame::new(d)),
        }
    }
}

/// Draws a random game, covering every family with the same parameter
/// ranges the former proptest strategy used.
fn random_game(rng: &mut SimRng) -> GameChoice {
    match rng.index(7) {
        0 => GameChoice::Majority(1 + rng.index(11)),
        1 => GameChoice::Parity(1 + rng.index(11)),
        2 => GameChoice::OneSided(1 + rng.index(11)),
        3 => {
            let n = 2 + rng.index(10);
            GameChoice::Threshold(n, 1 + rng.index(n))
        }
        4 => GameChoice::Tribes(1 + rng.index(3), 1 + rng.index(3)),
        5 => GameChoice::ModK(1 + rng.index(7), 2 + rng.index(3)),
        _ => GameChoice::RecursiveMajority(1 + rng.index(2) as u32),
    }
}

/// A uniform fraction in `[0, 1)`.
fn unit_fraction(rng: &mut SimRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Soundness: whatever a searcher claims to force, re-evaluating the
/// game under the returned hide-set confirms — and the set respects
/// the budget.
#[test]
fn searchers_are_sound() {
    let mut gen = SimRng::new(0x50A2);
    for case in 0..64 {
        let choice = random_game(&mut gen);
        let seed = gen.next_u64();
        let t_frac = unit_fraction(&mut gen);
        let target_idx = gen.index(5);
        let game = choice.build();
        let n = game.players();
        let t = ((n as f64) * t_frac) as usize;
        let target = Outcome(target_idx % game.outcomes());
        let mut rng = SimRng::new(seed);
        let values = synran::coin::sample_inputs(game.as_ref(), &mut rng);

        for result in [
            GreedyHider.force(game.as_ref(), &values, t, target),
            ExhaustiveHider::default().force(game.as_ref(), &values, t, target),
            CombinedHider::default().force(game.as_ref(), &values, t, target),
        ] {
            if let SearchOutcome::Forced(set) = result {
                assert!(set.len() <= t, "case {case}: hide-set larger than budget");
                let mut sorted = set.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), set.len(), "case {case}: duplicate hides");
                assert_eq!(game.outcome(&with_hidden(&values, &set)), target);
            }
        }
    }
}

/// Completeness of the exact searcher relative to greedy: greedy can
/// never find a forcing set the exhaustive search misses.
#[test]
fn exhaustive_dominates_greedy() {
    let mut gen = SimRng::new(0xD011);
    for case in 0..64 {
        let choice = random_game(&mut gen);
        let seed = gen.next_u64();
        let t = gen.index(4);
        let game = choice.build();
        let mut rng = SimRng::new(seed);
        let values = synran::coin::sample_inputs(game.as_ref(), &mut rng);
        for v in 0..game.outcomes() {
            let greedy = GreedyHider.force(game.as_ref(), &values, t, Outcome(v));
            let exact = ExhaustiveHider::default().force(game.as_ref(), &values, t, Outcome(v));
            if greedy.is_forced() {
                assert!(exact.is_forced(), "case {case}");
            }
            if exact == SearchOutcome::Impossible {
                assert!(!greedy.is_forced(), "case {case}");
            }
        }
    }
}

/// Blow-up is monotone, extensive, and saturates at the full cube.
#[test]
fn blowup_invariants() {
    let mut gen = SimRng::new(0xB10);
    for case in 0..64 {
        let n = 1 + gen.index(9) as u32;
        let density = unit_fraction(&mut gen);
        let seed = gen.next_u64();
        let l1 = gen.index(10) as u32;
        let l2 = gen.index(10) as u32;
        let mut rng = SimRng::new(seed);
        let a = HypercubeSet::random(n, density, &mut rng);
        let (lo, hi) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let b_lo = a.blow_up(lo.min(n));
        let b_hi = a.blow_up(hi.min(n));
        // Extensive: A ⊆ B(A, l). Monotone: B(A, lo) ⊆ B(A, hi).
        for p in a.points() {
            assert!(b_lo.contains(p), "case {case}");
        }
        for p in b_lo.points() {
            assert!(b_hi.contains(p), "case {case}");
        }
        if !a.is_empty() {
            assert_eq!(
                a.blow_up(n).count(),
                1u64 << n,
                "case {case}: radius n covers the cube"
            );
        }
    }
}

/// The RNG's bounded draw is unbiased enough to always stay in range,
/// and distinct streams never alias for distinct coordinates.
#[test]
fn rng_invariants() {
    let mut gen = SimRng::new(0x4216);
    for _case in 0..64 {
        let seed = gen.next_u64();
        let bound = 1 + gen.below(999);
        let draws = 1 + gen.index(49);
        let mut rng = SimRng::new(seed);
        for _ in 0..draws {
            assert!(rng.below(bound) < bound);
        }
        let a = SimRng::stream(
            seed,
            ProcessId::new(1),
            synran::sim::Round::new(2),
            synran::sim::StreamPhase::Send,
        );
        let b = SimRng::stream(
            seed,
            ProcessId::new(2),
            synran::sim::Round::new(1),
            synran::sim::StreamPhase::Send,
        );
        assert_ne!(a, b, "stream collision across coordinates");
    }
}

/// Inboxes built from arbitrary unordered input sort by sender and
/// answer lookups consistently.
#[test]
fn inbox_invariants() {
    let mut gen = SimRng::new(0x1B0);
    for case in 0..64 {
        let count = gen.index(20);
        let senders: std::collections::BTreeSet<usize> =
            (0..count).map(|_| gen.index(64)).collect();
        let inbox: Inbox<Bit> = senders
            .iter()
            .rev() // feed in descending order to exercise the sort
            .map(|&s| (ProcessId::new(s), Bit::from(s % 2 == 0)))
            .collect();
        assert_eq!(inbox.len(), senders.len(), "case {case}");
        let mut last = None;
        for (s, m) in inbox.iter() {
            assert!(last.is_none_or(|l| l < s), "case {case}: not ascending");
            assert_eq!(inbox.from(s), Some(m));
            last = Some(s);
        }
        assert_eq!(
            inbox.count_where(|m| m.is_one()),
            senders.iter().filter(|s| *s % 2 == 0).count()
        );
    }
}

/// Sampling k distinct indices really gives k distinct in-range
/// indices, for all k ≤ len.
#[test]
fn sample_indices_invariants() {
    let mut gen = SimRng::new(0x5A3);
    for case in 0..64 {
        let seed = gen.next_u64();
        let len = 1 + gen.index(63);
        let k_frac = unit_fraction(&mut gen);
        let k = ((len as f64) * k_frac) as usize;
        let mut rng = SimRng::new(seed);
        let sample = rng.sample_indices(len, k);
        assert_eq!(sample.len(), k, "case {case}");
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "case {case}");
        assert!(sample.iter().all(|&i| i < len), "case {case}");
    }
}
