//! The §1.2 landscape in one run: leader protocols vs adaptivity.
//!
//! ```text
//! cargo run --release --example leader_vs_adaptive
//! ```
//!
//! Runs the CMS-style [`LeaderConsensus`] against (a) a failure schedule
//! fixed before the execution and (b) the adaptive leader hunter, and
//! prints the round counts side by side — the measured version of the
//! paper's remark that its lower bound "does not hold without the
//! adaptive selection of the faulty processes".

use synran::prelude::*;

fn mean_rounds<A, F>(n: usize, t: usize, runs: u64, mut make: F) -> Result<f64, SimError>
where
    A: Adversary<synran::core::LeaderProcess>,
    F: FnMut(u64) -> A,
{
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
    let mut total = 0u32;
    for seed in 0..runs {
        let verdict = synran::core::check_consensus(
            &LeaderConsensus::for_faults(t),
            &inputs,
            SimConfig::new(n).faults(t).seed(seed).max_rounds(100_000),
            &mut make(seed),
        )?;
        assert!(verdict.is_correct(), "{:?}", verdict.violations());
        total += verdict.rounds();
    }
    Ok(f64::from(total) / runs as f64)
}

fn main() -> Result<(), SimError> {
    let n = 41;
    let t = 20;
    let runs = 12;
    println!("LeaderConsensus (random-leader, t < n/2): n = {n}, t = {t}, {runs} runs each\n");

    let passive = mean_rounds(n, t, runs, |_| Passive)?;
    println!("vs nobody            : {passive:>6.1} rounds");

    let static_adv = mean_rounds(n, t, runs, |seed| Oblivious::new(n, 1, 200, seed))?;
    println!("vs pre-committed kills: {static_adv:>6.1} rounds   (the CMS O(1) effect)");

    let adaptive = mean_rounds(n, t, runs, |_| LeaderHunter::new())?;
    println!("vs adaptive hunter   : {adaptive:>6.1} rounds   (≈ t = {t}: the leaders get shot)");

    println!(
        "\nadaptivity multiplied the latency by {:.0}× — Theorem 1's adversary model",
        adaptive / static_adv
    );
    println!("is not a technicality; it is the whole game.");
    Ok(())
}
