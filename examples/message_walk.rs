//! Watching the §3.4 proof work: the message-walking adversary live.
//!
//! ```text
//! cargo run --release --example message_walk
//! ```
//!
//! Runs SynRan at small n under the [`MessageWalker`] — the finest-grained
//! realisation of the paper's lower-bound strategy, which fails one
//! process at a time and cuts its final messages receiver by receiver,
//! checking the estimated valency after every step — and prints the kill
//! pattern it discovers each round.

use synran::adversary::MessageWalker;
use synran::prelude::*;
use synran::sim::Event;

fn main() -> Result<(), SimError> {
    let n = 12;
    let t = n - 1;
    let seed = 11;
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();

    let verdict = synran::core::check_consensus(
        &SynRan::new(),
        &inputs,
        SimConfig::new(n)
            .faults(t)
            .seed(seed)
            .trace(true)
            .max_rounds(50_000),
        &mut MessageWalker::new(4, 3, 30, seed),
    )?;

    println!("n = {n}, t = {t}, even-split inputs, §3.4 message-walking adversary\n");
    println!("the walk, as recorded by the engine trace:");
    for event in verdict.report().trace().events() {
        match event {
            Event::Killed {
                victim,
                round,
                delivered,
                suppressed,
            } => println!(
                "  {round}: walked {victim} — kept {delivered} of its messages, cut {suppressed}"
            ),
            Event::Decided { pid, round, value } => {
                println!("  {round}: {pid} decided {value}");
                break;
            }
            _ => {}
        }
    }
    println!(
        "\noutcome: {} rounds, {} kills, decision {:?} — all consensus conditions: {}",
        verdict.rounds(),
        verdict.report().metrics().total_kills(),
        verdict.report().unanimous_decision(),
        if verdict.is_correct() {
            "hold"
        } else {
            "VIOLATED"
        },
    );
    println!("\nreading: partial message deliveries (kept > 0, cut > 0) are the paper's");
    println!("case-3 steps — the walk found the exact message whose loss flips the");
    println!("round's valency, and stopped there.");
    assert!(verdict.is_correct());
    Ok(())
}
