//! Probing the valency of a live execution — the lower bound's engine.
//!
//! ```text
//! cargo run --release --example valency_probe
//! ```
//!
//! Reproduces §3.2's state classification on a real execution: pause a
//! SynRan run between Phase A and Phase B, fork it under reference
//! adversaries, and watch `min`/`max Pr[decide 1]` — bivalent at the
//! start, univalent just before the decision. This fork-and-measure
//! primitive is exactly what `LowerBoundAdversary` uses to pick its kills.

use synran::adversary::{classify_with, estimate_valency, ProbeSet};
use synran::core::ConsensusProtocol;
use synran::prelude::*;

fn main() -> Result<(), SimError> {
    let n = 16;
    let t = n / 2;
    let protocol = SynRan::new();
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i < n / 2)).collect();

    let mut world = World::new(
        SimConfig::new(n).faults(t).seed(5).max_rounds(10_000),
        |pid| protocol.spawn(pid, n, inputs[pid.index()]),
    )?;

    let probes = ProbeSet::synran(t);
    println!("n = {n}, t = {t}, even-split inputs; probes: {probes:?}\n");
    println!("round  min Pr[1]  max Pr[1]  uncertainty  class (lo=0.25, hi=0.75)");

    // Step the world round by round (passively) and probe between phases.
    for _ in 0..12 {
        if world.finished() {
            break;
        }
        world.phase_a()?;
        let est = estimate_valency(&world, &probes, 12, 60, world.round().index().into())
            .expect("probing a paused world");
        let class = classify_with(&est, 0.25, 0.75);
        println!(
            "{:>5}  {:>9.2}  {:>9.2}  {:>11.2}  {class}",
            world.round().index(),
            est.min_p1(),
            est.max_p1(),
            est.uncertainty(),
        );
        world.deliver(Intervention::none())?;
    }

    let report = world.report();
    println!(
        "\npassive run decided {:?} after {} rounds",
        report.unanimous_decision(),
        report.rounds()
    );
    println!("reading: early rounds are bivalent (both probes can steer); the execution");
    println!("passes through exactly one valency collapse on its way to a decision —");
    println!("the structure Theorem 1's adversary exploits round after round.");
    Ok(())
}
