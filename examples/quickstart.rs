//! Quickstart: run SynRan to agreement under a live adversary.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Spins up 32 processes with split inputs, lets a random fail-stop
//! adversary kill up to half of them, and verifies the three consensus
//! conditions on the resulting execution.

use synran::prelude::*;

fn main() -> Result<(), SimError> {
    let n = 32;
    let t = n / 2;
    let seed = 2024;

    // Half the processes start with 1, half with 0 — the contested case.
    let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();

    // The paper's protocol...
    let protocol = SynRan::new();
    // ...against an adversary that kills √n random processes per round.
    let mut adversary = RandomKiller::new((n as f64).sqrt() as usize, seed);

    let cfg = SimConfig::new(n).faults(t).seed(seed).trace(true);
    let verdict = check_consensus(&protocol, &inputs, cfg, &mut adversary)?;

    println!("protocol   : {}", protocol.name());
    println!("system     : n = {n}, fault budget t = {t}");
    println!("rounds     : {}", verdict.rounds());
    println!("kills used : {}", verdict.report().metrics().total_kills());
    println!("decision   : {:?}", verdict.report().unanimous_decision());
    println!("agreement  : {}", verdict.agreement());
    println!("validity   : {}", verdict.validity());
    println!("termination: {}", verdict.termination());

    println!("\nfirst events of the execution:");
    for event in verdict.report().trace().events().iter().take(12) {
        println!("  {event}");
    }

    assert!(verdict.is_correct(), "{:?}", verdict.violations());
    println!("\nconsensus reached — all three conditions hold.");
    Ok(())
}
