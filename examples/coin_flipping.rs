//! Collective coin flipping under an adaptive fail-stop adversary.
//!
//! ```text
//! cargo run --release --example coin_flipping
//! ```
//!
//! Walks the paper's §2: the same hide budget that leaves a game's
//! outcome untouched on average lets an adaptive adversary *control* one
//! particular outcome — and which outcomes are controllable is a property
//! of the game's shape, not its fairness.

use synran::coin::{
    bias_radius, estimate_control, sample_inputs, with_hidden, CoinGame, CombinedHider,
    GreedyHider, HideSearch, MajorityGame, OneSidedGame, Outcome, ParityGame, SearchOutcome,
};
use synran::sim::SimRng;

fn demo_single_instance() {
    println!("-- one concrete instance --");
    let n = 15;
    let game = MajorityGame::new(n);
    let mut rng = SimRng::new(99);
    let values = sample_inputs(&game, &mut rng);
    let ones = values.iter().filter(|&&v| v == 1).count();
    println!("inputs ({ones} ones of {n}): {values:?}");

    match CombinedHider::default().force(&game, &values, 4, Outcome(0)) {
        SearchOutcome::Forced(set) => {
            println!("adversary forces 0 by hiding players {set:?}");
            let outcome = game.outcome(&with_hidden(&values, &set));
            assert_eq!(outcome, Outcome(0));
        }
        other => println!("cannot force 0 with 4 hides: {other:?}"),
    }
    match CombinedHider::default().force(&game, &values, n, Outcome(1)) {
        SearchOutcome::Forced(set) if !set.is_empty() => {
            println!("unexpectedly forced 1 by hiding {set:?}");
        }
        SearchOutcome::Forced(_) => println!("outcome was already 1 with no hides"),
        other => {
            println!("forcing 1 is {other:?} even with unlimited hides — hides only remove 1s")
        }
    }
}

fn demo_control_spectrum() {
    println!("\n-- the controllability spectrum (Corollary 2.2) --");
    let n = 101;
    let h = bias_radius(n);
    let t = h.ceil() as usize;
    println!("n = {n}, hide budget t = ⌈4√(n·ln n)⌉ = {t}");
    let mut rng = SimRng::new(7);
    let games: Vec<Box<dyn CoinGame>> = vec![
        Box::new(MajorityGame::new(n)),
        Box::new(ParityGame::new(n)),
        Box::new(OneSidedGame::new(n)),
    ];
    for game in &games {
        let est = estimate_control(game.as_ref(), &GreedyHider, t.min(n), 400, &mut rng);
        println!(
            "  {:<12} force→0: {:>5.3}  force→1: {:>5.3}  controlled: {}",
            game.name(),
            est.forcible_fraction(Outcome(0)),
            est.forcible_fraction(Outcome(1)),
            est.controlled_outcome(1.0 - 1.0 / n as f64)
                .map_or("-".to_string(), |v| v.to_string()),
        );
    }
    println!("\nmajority-0 and one-sided are each controllable in exactly ONE direction —");
    println!("the asymmetry SynRan's `Z = 0 → 1` coin rule is built on.");
}

fn main() {
    println!("one-round collective coin flipping vs an adaptive fail-stop adversary\n");
    demo_single_instance();
    demo_control_spectrum();
}
