//! Adversarial showdown: every protocol against every adversary.
//!
//! ```text
//! cargo run --release --example adversarial_showdown [-- --n 64 --runs 20]
//! ```
//!
//! A miniature tournament reproducing the paper's headline comparison: the
//! deterministic `t+1`-round baseline is unbeatable for tiny `t` but loses
//! badly to SynRan once `t ≫ √n`, and no adversary in the suite can stall
//! SynRan beyond its `O(t/√(n·log n))` budget — or break its safety.

use synran::analysis::{fmt_f64, Table};
use synran::core::SynRanProcess;
use synran::prelude::*;

fn parse_flag(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), SimError> {
    let n = parse_flag("n", 48);
    let runs = parse_flag("runs", 15);
    let t = n - 1;
    let cfg = SimConfig::new(n).faults(t).max_rounds(200_000);
    let rate = (n as f64).sqrt().ceil() as usize;

    println!("tournament: n = {n}, t = {t}, {runs} runs per cell\n");

    let mut table = Table::new(["adversary", "flooding (t+1)", "synran", "synran-sym"]);
    type Mk = Box<dyn Fn(u64) -> Box<dyn Adversary<SynRanProcess> + Send> + Sync>;
    let suite: Vec<(&str, Mk)> = vec![
        ("passive", Box::new(|_| Box::new(Passive))),
        (
            "random(√n)",
            Box::new(move |s| Box::new(RandomKiller::new(rate, s))),
        ),
        ("storm", Box::new(|s| Box::new(Storm::new(s)))),
        (
            "kill-ones",
            Box::new(move |_| Box::new(PreferenceKiller::new(Bit::One, rate))),
        ),
        ("balancer", Box::new(|_| Box::new(Balancer::unbounded()))),
    ];

    for (name, factory) in &suite {
        // Flooding ignores process internals, so SynRan-specific
        // adversaries degenerate to their generic behaviour; report the
        // deterministic column only for the generic rows.
        let flooding_cell = if matches!(*name, "passive" | "random(√n)" | "storm") {
            let out = run_batch(
                &FloodingConsensus::for_faults(t),
                InputAssignment::even_split(n),
                &cfg,
                runs,
                11,
                |s| RandomKillerOrPassive::wrap(name, s, rate),
            )?;
            assert!(out.all_correct(), "{:?}", out.incorrect());
            fmt_f64(out.mean_rounds(), 1)
        } else {
            format!("{} (oblivious)", t + 1)
        };
        let synran = run_batch(
            &SynRan::new(),
            InputAssignment::even_split(n),
            &cfg,
            runs,
            11,
            factory,
        )?;
        assert!(synran.all_correct(), "{:?}", synran.incorrect());
        let sym = run_batch(
            &SynRan::symmetric(),
            InputAssignment::even_split(n),
            &cfg,
            runs,
            11,
            factory,
        )?;
        // The symmetric variant may violate validity under adaptive attack
        // (that is the paper's point); report rather than assert.
        let sym_cell = if sym.all_correct() {
            fmt_f64(sym.mean_rounds(), 1)
        } else {
            format!(
                "{} (!{} unsafe)",
                fmt_f64(sym.mean_rounds(), 1),
                sym.incorrect().len()
            )
        };
        table.row([
            (*name).to_string(),
            flooding_cell,
            fmt_f64(synran.mean_rounds(), 1),
            sym_cell,
        ]);
    }
    print!("{table}");
    println!(
        "\nreading: flooding is pinned at t + 1 = {} rounds; SynRan stays near its",
        t + 1
    );
    println!("O(t/√(n·log n)) budget against every attack, with safety intact.");
    Ok(())
}

/// Adapter giving flooding the generic members of the suite.
enum RandomKillerOrPassive {
    Passive,
    Random(RandomKiller),
    Storm(Storm),
}

impl RandomKillerOrPassive {
    fn wrap(name: &str, seed: u64, rate: usize) -> RandomKillerOrPassive {
        match name {
            "random(√n)" => RandomKillerOrPassive::Random(RandomKiller::new(rate, seed)),
            "storm" => RandomKillerOrPassive::Storm(Storm::new(seed)),
            _ => RandomKillerOrPassive::Passive,
        }
    }
}

impl<P: synran::sim::Process> Adversary<P> for RandomKillerOrPassive {
    fn intervene(&mut self, world: &World<P>) -> Intervention {
        match self {
            RandomKillerOrPassive::Passive => Passive.intervene(world),
            RandomKillerOrPassive::Random(r) => r.intervene(world),
            RandomKillerOrPassive::Storm(s) => s.intervene(world),
        }
    }
}
