//! The `synran` command-line tool: run protocols against adversaries
//! without writing code.
//!
//! ```text
//! synran run   --protocol synran --adversary balancer --n 64 --t 63 --seed 7
//! synran batch --protocol leader --adversary oblivious --n 65 --t 32 --runs 25
//! synran campaign run campaigns/e3.campaign
//! synran list
//! ```

use std::collections::HashMap;
use std::path::Path;
use std::process::ExitCode;

use synran::adversary::{
    Balancer, LeaderHunter, LowerBoundAdversary, MessageWalker, Oblivious, PreferenceKiller,
    RandomKiller, Storm,
};
use synran::core::{
    check_consensus_with, run_batch_with, ConsensusProtocol, FloodingConsensus, InputAssignment,
    LeaderConsensus, SynRan,
};
use synran::lab::{
    agent_main, fleet_sidecar_path, load_cache, presets, scan_fleet_sidecar, scan_journal,
    AgentConfig, CampaignSpec, CellCache, CellRunner, Engine, Fleet, FleetConfig, Journal, Report,
    ReportFormat, StderrProgress,
};
use synran::sim::{
    Adversary, Bit, JsonlSink, Passive, Process, SimConfig, SimRng, Telemetry, TelemetryEvent,
    TelemetryMode, TelemetrySink,
};

const USAGE: &str = "\
synran — randomized synchronous consensus vs adaptive fail-stop adversaries
(Bar-Joseph & Ben-Or, PODC 1998)

USAGE:
  synran run   [OPTIONS]    run one execution and print its verdict
  synran batch [OPTIONS]    run many seeded executions and print statistics
  synran campaign run <spec>     run a declarative campaign (journalled,
                 resumable; cached cells are skipped automatically)
  synran campaign resume <spec>  alias of run — resuming is the default
  synran campaign status <spec>  show percent-complete and journal health,
                 no execution
  synran campaign list           list the specs under campaigns/
  synran campaign agent --listen <addr>  serve campaign cells to remote
                 supervisors over TCP (long-lived; pair with
                 `campaign run --workers host:port,...`)
  synran report [OPTIONS] <file>...  render telemetry/journal JSONL artifacts
                 as deterministic tables, JSON, or folded stacks
  synran list               list protocols, adversaries, and experiments

CAMPAIGN OPTIONS:
  --threads <int>      worker threads (0 = all cores; results identical
                       for every value)                      (default 0)
  --procs <int>        worker *processes* (campaign run only). The
                       supervisor leases cells to N subprocesses with
                       heartbeats and crash-tolerant retry; journal and
                       stdout are byte-identical for every value
                       (default 1 = in-process engine)
  --workers <list>     comma-separated worker slots (campaign run only):
                       TCP agent addresses and local pipe slots, e.g.
                       10.0.0.2:7070,local:2. Overrides --procs; remote
                       disconnects retry like worker crashes; journal and
                       stdout stay byte-identical to the engine
  --token <secret>     shared handshake secret for TCP workers
                       (default $SYNRAN_FLEET_TOKEN, else empty)
  --results-dir <dir>  journal directory                     (default results)
  --fresh              truncate the journal first (campaign run only)
  --import <path>      merge another campaign's journal as a read-only
                       result cache (cross-campaign dedup)
  --progress <int>     heartbeat to stderr every N completed cells
                       (observe-only; results identical with it on or off)
  --dir <dir>          directory scanned by campaign list    (default campaigns)

AGENT OPTIONS:
  --listen <addr>      bind address, e.g. 127.0.0.1:7070 (port 0 picks an
                       ephemeral port)                      (required)
  --token <secret>     secret supervisors must present
                       (default $SYNRAN_FLEET_TOKEN, else empty)
  --threads <int>      capability advertised in the handshake (0 = all cores)
  --port-file <path>   atomically write the bound address to <path> —
                       ephemeral-port discovery for scripts
  --once               exit after serving one supervisor connection

REPORT OPTIONS:
  --format table | json | folded   rendering                 (default table)
                 folded emits `a;b;c self_ns` stack lines for flamegraph
                 tooling (spans-mode telemetry only)
  --check        verify stream integrity instead of rendering: exit nonzero
                 on malformed or truncated lines
  Files ending in .journal.jsonl parse as campaign journals; everything
  else parses as telemetry JSONL. Output is a pure function of the input
  bytes — byte-identical on every re-run at any thread count.

OPTIONS:
  --protocol  synran | symmetric | flooding | leader        (default synran)
  --adversary passive | random | storm | oblivious | kill-ones | kill-zeros
              | balancer | lower-bound | walker | hunter    (default passive)
  --n    <int>   system size                                (default 32)
  --t    <int>   fault budget                               (default n-1; leader: (n-1)/2)
  --ones <int>   processes with input 1                     (default n/2)
  --seed <int>   master seed                                (default 1)
  --runs <int>   batch size (batch only)                    (default 20)
  --threads <int> worker threads for batches (0 = all cores, 1 = serial;
                 results are identical for every value)     (default 0)
  --trace        print the event trace (run only)
  --telemetry off | counters | spans                        (default off;
                 counters if --telemetry-out is given)
  --telemetry-out <path>  write the run's telemetry as JSONL (one event per
                 line). Telemetry is observe-only: results are identical
                 with it on or off.

Adversary/protocol compatibility: balancer, lower-bound, walker, kill-*
attack the SynRan family; hunter attacks leader; the rest attack anything.";

type Parsed = (Vec<String>, HashMap<String, String>, Vec<String>);

/// Splits an argument list into positionals (command words, spec paths),
/// `--key value` pairs, and bare `--flag`s.
fn parse(args: &[String]) -> Parsed {
    let mut positionals = Vec::new();
    let mut values = HashMap::new();
    let mut flags = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    values.insert(key.to_string(), it.next().expect("peeked").clone());
                }
                _ => flags.push(key.to_string()),
            }
        } else {
            positionals.push(a.clone());
        }
    }
    (positionals, values, flags)
}

#[derive(Debug)]
struct Opts {
    protocol: String,
    adversary: String,
    n: usize,
    t: usize,
    ones: usize,
    seed: u64,
    runs: usize,
    threads: usize,
    trace: bool,
    telemetry: TelemetryMode,
    telemetry_out: Option<String>,
}

impl Opts {
    fn from(values: &HashMap<String, String>, flags: &[String]) -> Result<Opts, String> {
        let get_usize = |k: &str, d: usize| -> Result<usize, String> {
            values.get(k).map_or(Ok(d), |v| {
                v.parse().map_err(|_| format!("--{k}: not an integer: {v}"))
            })
        };
        let protocol = values
            .get("protocol")
            .cloned()
            .unwrap_or_else(|| "synran".into());
        let n = get_usize("n", 32)?;
        let telemetry_out = values.get("telemetry-out").cloned();
        // An output path without an explicit mode means "record counters".
        let default_mode = if telemetry_out.is_some() {
            TelemetryMode::Counters
        } else {
            TelemetryMode::Off
        };
        let telemetry = values.get("telemetry").map_or(Ok(default_mode), |v| {
            v.parse().map_err(|e| format!("--telemetry: {e}"))
        })?;
        let default_t = if protocol == "leader" {
            (n.saturating_sub(1)) / 2
        } else {
            n.saturating_sub(1)
        };
        Ok(Opts {
            adversary: values
                .get("adversary")
                .cloned()
                .unwrap_or_else(|| "passive".into()),
            t: get_usize("t", default_t)?,
            ones: get_usize("ones", n / 2)?,
            seed: values.get("seed").map_or(Ok(1), |v| {
                v.parse()
                    .map_err(|_| format!("--seed: not an integer: {v}"))
            })?,
            runs: get_usize("runs", 20)?,
            threads: get_usize("threads", 0)?,
            trace: flags.iter().any(|f| f == "trace"),
            telemetry,
            telemetry_out,
            protocol,
            n,
        })
    }

    fn inputs(&self) -> Vec<Bit> {
        (0..self.n).map(|i| Bit::from(i < self.ones)).collect()
    }

    fn config(&self) -> SimConfig {
        SimConfig::new(self.n)
            .faults(self.t)
            .seed(self.seed)
            .max_rounds(500_000)
            .trace(self.trace)
            .threads(self.threads)
    }
}

/// A boxed adversary that can be built on batch worker threads.
type BoxedAdv<P> = Box<dyn Adversary<P> + Send>;

/// Builds the adversary for a SynRan-family run.
fn synran_adversary(
    name: &str,
    opts: &Opts,
    seed: u64,
) -> Result<BoxedAdv<synran::core::SynRanProcess>, String> {
    let rate = (opts.n as f64).sqrt().ceil() as usize;
    Ok(match name {
        "passive" => Box::new(Passive),
        "random" => Box::new(RandomKiller::new(rate, seed)),
        "storm" => Box::new(Storm::new(seed)),
        "oblivious" => Box::new(Oblivious::new(opts.n, rate, 500, seed)),
        "kill-ones" => Box::new(PreferenceKiller::new(Bit::One, rate)),
        "kill-zeros" => Box::new(PreferenceKiller::new(Bit::Zero, rate)),
        "balancer" => Box::new(Balancer::unbounded()),
        "lower-bound" => Box::new(LowerBoundAdversary::for_system(opts.n, seed)),
        "walker" => Box::new(MessageWalker::new(rate.max(2), 3, 30, seed)),
        other => return Err(format!("adversary {other:?} cannot attack this protocol")),
    })
}

/// Builds the adversary for a protocol whose process type only generic
/// adversaries understand.
fn generic_adversary<P: Process>(
    name: &str,
    opts: &Opts,
    seed: u64,
) -> Result<BoxedAdv<P>, String> {
    let rate = (opts.n as f64).sqrt().ceil() as usize;
    Ok(match name {
        "passive" => Box::new(Passive),
        "random" => Box::new(RandomKiller::new(rate, seed)),
        "storm" => Box::new(Storm::new(seed)),
        "oblivious" => Box::new(Oblivious::new(opts.n, rate, 500, seed)),
        other => return Err(format!("adversary {other:?} cannot attack this protocol")),
    })
}

fn leader_adversary(
    name: &str,
    opts: &Opts,
    seed: u64,
) -> Result<BoxedAdv<synran::core::LeaderProcess>, String> {
    if name == "hunter" {
        return Ok(Box::new(LeaderHunter::new()));
    }
    generic_adversary(name, opts, seed)
}

fn run_once<P>(
    protocol: &P,
    opts: &Opts,
    telemetry: &Telemetry,
    mut adversary: BoxedAdv<P::Proc>,
) -> Result<(), String>
where
    P: ConsensusProtocol,
{
    let verdict = check_consensus_with(
        protocol,
        &opts.inputs(),
        opts.config(),
        &mut adversary,
        telemetry,
    )
    .map_err(|e| e.to_string())?;
    println!("protocol    : {}", protocol.name());
    println!("adversary   : {}", opts.adversary);
    println!("n / t / ones: {} / {} / {}", opts.n, opts.t, opts.ones);
    println!("rounds      : {}", verdict.rounds());
    println!("kills       : {}", verdict.report().metrics().total_kills());
    println!("decision    : {:?}", verdict.report().unanimous_decision());
    println!(
        "correct     : {} (agreement {}, validity {}, termination {})",
        verdict.is_correct(),
        verdict.agreement(),
        verdict.validity(),
        verdict.termination()
    );
    if !verdict.violations().is_empty() {
        for v in verdict.violations() {
            println!("violation   : {v}");
        }
    }
    if opts.trace {
        println!("\ntrace:");
        for e in verdict.report().trace().events() {
            println!("  {e}");
        }
    }
    Ok(())
}

fn run_batch_cmd<P, F>(
    protocol: &P,
    opts: &Opts,
    telemetry: &Telemetry,
    make: F,
) -> Result<(), String>
where
    P: ConsensusProtocol + Sync,
    F: Fn(u64) -> Result<BoxedAdv<P::Proc>, String> + Sync,
{
    // Pre-validate the adversary name once.
    make(0)?;
    let assignment = InputAssignment::Split { ones: opts.ones };
    let outcome = run_batch_with(
        protocol,
        assignment,
        &opts.config(),
        opts.runs,
        opts.seed,
        telemetry,
        |s| make(s).expect("validated above"),
    )
    .map_err(|e| e.to_string())?;
    let mean = outcome.mean_rounds();
    let kills: f64 =
        outcome.kills().iter().map(|&k| k as f64).sum::<f64>() / outcome.kills().len() as f64;
    println!("protocol  : {}", protocol.name());
    println!("adversary : {}", opts.adversary);
    println!("n / t     : {} / {}", opts.n, opts.t);
    println!("runs      : {}", opts.runs);
    println!(
        "rounds    : mean {:.1}, max {:?}",
        mean,
        outcome.max_rounds()
    );
    println!("kills     : mean {kills:.1}");
    println!(
        "correct   : {}/{} runs",
        opts.runs - outcome.incorrect().len() - outcome.timeouts(),
        opts.runs
    );
    for (seed, violations) in outcome.incorrect() {
        println!("  seed {seed}: {violations:?}");
    }
    Ok(())
}

fn dispatch(cmd: &str, opts: &Opts) -> Result<(), String> {
    let seed0 = SimRng::new(opts.seed).next_u64();
    let telemetry = Telemetry::new(opts.telemetry);
    match (cmd, opts.protocol.as_str()) {
        ("run", "synran") => run_once(
            &SynRan::new(),
            opts,
            &telemetry,
            synran_adversary(&opts.adversary, opts, seed0)?,
        ),
        ("run", "symmetric") => run_once(
            &SynRan::symmetric(),
            opts,
            &telemetry,
            synran_adversary(&opts.adversary, opts, seed0)?,
        ),
        ("run", "flooding") => run_once(
            &FloodingConsensus::for_faults(opts.t),
            opts,
            &telemetry,
            generic_adversary(&opts.adversary, opts, seed0)?,
        ),
        ("run", "leader") => run_once(
            &LeaderConsensus::for_faults(opts.t),
            opts,
            &telemetry,
            leader_adversary(&opts.adversary, opts, seed0)?,
        ),
        ("batch", "synran") => run_batch_cmd(&SynRan::new(), opts, &telemetry, |s| {
            synran_adversary(&opts.adversary, opts, s)
        }),
        ("batch", "symmetric") => run_batch_cmd(&SynRan::symmetric(), opts, &telemetry, |s| {
            synran_adversary(&opts.adversary, opts, s)
        }),
        ("batch", "flooding") => run_batch_cmd(
            &FloodingConsensus::for_faults(opts.t),
            opts,
            &telemetry,
            |s| generic_adversary(&opts.adversary, opts, s),
        ),
        ("batch", "leader") => run_batch_cmd(
            &LeaderConsensus::for_faults(opts.t),
            opts,
            &telemetry,
            |s| leader_adversary(&opts.adversary, opts, s),
        ),
        (_, p) => return Err(format!("unknown protocol {p:?} (see `synran list`)")),
    }?;
    if let Some(path) = &opts.telemetry_out {
        write_telemetry(path, cmd, opts, &telemetry)?;
        println!("telemetry   : {} ({})", path, opts.telemetry);
    }
    Ok(())
}

/// Writes the run's telemetry as JSONL: meta attribution lines first, then
/// the exported registry (counters, histograms, spans).
fn write_telemetry(
    path: &str,
    cmd: &str,
    opts: &Opts,
    telemetry: &Telemetry,
) -> Result<(), String> {
    let file = std::fs::File::create(path).map_err(|e| format!("--telemetry-out {path}: {e}"))?;
    let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
    for (key, value) in [
        ("command", cmd.to_string()),
        ("protocol", opts.protocol.clone()),
        ("adversary", opts.adversary.clone()),
        ("n", opts.n.to_string()),
        ("t", opts.t.to_string()),
        ("seed", opts.seed.to_string()),
        ("mode", opts.telemetry.to_string()),
    ] {
        sink.emit(&TelemetryEvent::Meta {
            key: key.to_string(),
            value,
        });
    }
    telemetry.export(&mut sink);
    sink.finish()
        .map_err(|e| format!("--telemetry-out {path}: {e}"))?;
    Ok(())
}

/// `synran campaign <run|resume|status|list>` — the declarative campaign
/// engine (`synran::lab`). Rendered tables go to stdout; engine
/// bookkeeping (cache hits, journal paths) goes to stderr so campaign
/// output stays byte-identical to the experiment binaries'.
fn campaign_cmd(
    rest: &[String],
    values: &HashMap<String, String>,
    flags: &[String],
) -> Result<(), String> {
    let spec_path = rest.get(1).map(String::as_str);
    match rest.first().map(String::as_str) {
        Some(sub @ ("run" | "resume")) => campaign_run(spec_path, values, flags, sub == "run"),
        Some("status") => campaign_status(spec_path, values),
        Some("list") => campaign_list(values),
        Some("agent") => campaign_agent(values, flags),
        // Hidden: the fleet worker half of `campaign run --procs N`.
        // Supervisors spawn it; humans never type it.
        Some("worker") => {
            synran::lab::fleet::worker_main();
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown campaign command {other:?} (run, resume, status, list, agent)"
        )),
        None => Err("campaign expects a command: run, resume, status, list, or agent".into()),
    }
}

fn journal_path(values: &HashMap<String, String>, campaign: &str) -> std::path::PathBuf {
    let dir = values.get("results-dir").map_or("results", String::as_str);
    Path::new(dir).join(format!("{campaign}.journal.jsonl"))
}

fn campaign_run(
    spec_path: Option<&str>,
    values: &HashMap<String, String>,
    flags: &[String],
    allow_fresh: bool,
) -> Result<(), String> {
    let path = spec_path.ok_or("campaign run expects a spec path (e.g. campaigns/e3.campaign)")?;
    let spec = CampaignSpec::parse_file(Path::new(path)).map_err(|e| e.to_string())?;
    let cells = presets::campaign_cells(&spec).map_err(|e| e.to_string())?;
    let journal_path = journal_path(values, spec.name());
    let fresh = flags.iter().any(|f| f == "fresh");
    if fresh && !allow_fresh {
        return Err("--fresh discards the journal; use `campaign run --fresh`".into());
    }
    let (mut journal, cache) = if fresh {
        let journal = Journal::create_fresh(&journal_path).map_err(|e| e.to_string())?;
        (journal, CellCache::new())
    } else {
        Journal::open(&journal_path).map_err(|e| e.to_string())?
    };
    journal
        .append_header(spec.name(), cells.len(), &spec.content_hash())
        .map_err(|e| e.to_string())?;
    let threads = values.get("threads").map_or(Ok(0), |v| {
        v.parse()
            .map_err(|_| format!("--threads: not an integer: {v}"))
    })?;
    let procs: usize = values.get("procs").map_or(Ok(1), |v| {
        v.parse()
            .map_err(|_| format!("--procs: not an integer: {v}"))
    })?;
    let telemetry = Telemetry::new(spec.telemetry_mode().map_err(|e| e.to_string())?);
    let warm = cache.len();
    let mut engine = Engine::new(threads, telemetry).with_journal(journal, cache);
    // Opt-in heartbeats to stderr (`--progress N`, or bare `--progress`
    // for every 25 cells). Observe-only: stdout and the journal are
    // byte-identical with this on or off.
    let progress_every = match values.get("progress") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("--progress: not an integer: {v}"))?,
        ),
        None => flags.iter().any(|f| f == "progress").then_some(25),
    };
    if let Some(every) = progress_every {
        engine = engine.with_progress(every, Box::new(StderrProgress));
    }
    if let Some(import) = values.get("import") {
        let merged = engine
            .import_cache(Path::new(import))
            .map_err(|e| e.to_string())?;
        eprintln!("imported {merged} cached cells from {import}");
    }
    if warm > 0 {
        eprintln!(
            "resuming campaign {}: {warm} journalled cells already cached",
            spec.name()
        );
    }
    // `--procs 1` (the default) is the in-process engine verbatim;
    // more than one local slot — or any `--workers` remote — wraps it in
    // the fleet supervisor. Either way the journal and stdout are
    // byte-identical — the fleet's parity contract.
    let mut fleet_cfg = FleetConfig::from_env(procs);
    if let Some(workers) = values.get("workers") {
        fleet_cfg = fleet_cfg.with_workers(workers)?;
    }
    if let Some(token) = values.get("token") {
        fleet_cfg.token = token.clone();
    }
    let mut fleet_holder;
    let runner: &mut dyn CellRunner = if fleet_cfg.engages() {
        fleet_holder = Fleet::new(engine, fleet_cfg);
        &mut fleet_holder
    } else {
        &mut engine
    };
    presets::run_campaign(&spec, runner, &mut std::io::stdout().lock())
        .map_err(|e| e.to_string())?;
    eprintln!(
        "campaign {}: {} cells executed, {} cache hits → {}",
        spec.name(),
        runner.executed(),
        runner.cache_hits(),
        journal_path.display()
    );
    Ok(())
}

/// `synran campaign agent` — a long-lived TCP worker serving cells to
/// remote supervisors (`campaign run --workers host:port,...`).
fn campaign_agent(values: &HashMap<String, String>, flags: &[String]) -> Result<(), String> {
    let listen = values
        .get("listen")
        .cloned()
        .ok_or("campaign agent expects --listen ADDR (e.g. --listen 127.0.0.1:7070)")?;
    let token = values
        .get("token")
        .cloned()
        .or_else(|| std::env::var("SYNRAN_FLEET_TOKEN").ok())
        .unwrap_or_default();
    let threads = values.get("threads").map_or(Ok(0), |v| {
        v.parse()
            .map_err(|_| format!("--threads: not an integer: {v}"))
    })?;
    agent_main(&AgentConfig {
        listen,
        token,
        threads,
        port_file: values.get("port-file").map(std::path::PathBuf::from),
        once: flags.iter().any(|f| f == "once"),
    })
}

fn campaign_status(
    spec_path: Option<&str>,
    values: &HashMap<String, String>,
) -> Result<(), String> {
    let path = spec_path.ok_or("campaign status expects a spec path")?;
    let spec = CampaignSpec::parse_file(Path::new(path)).map_err(|e| e.to_string())?;
    let cells = presets::campaign_cells(&spec).map_err(|e| e.to_string())?;
    let journal_path = journal_path(values, spec.name());
    let scan = scan_journal(&journal_path).map_err(|e| e.to_string())?;
    // A cell counts as completed only if its journalled result is
    // *complete* (the cell-schema invariant), so half-written lines
    // dropped by truncation recovery — or a corrupt-but-parseable result
    // — never inflate the percentage.
    let completed = cells
        .iter()
        .filter(|c| {
            scan.cache.get(&c.content_hash()).is_some_and(|r| {
                r.rounds.len() + r.timeouts as usize == c.runs && r.kills.len() == r.rounds.len()
            })
        })
        .count();
    #[allow(clippy::cast_precision_loss)]
    let percent = if cells.is_empty() {
        100.0
    } else {
        completed as f64 * 100.0 / cells.len() as f64
    };
    println!("campaign   : {}", spec.name());
    println!("experiment : {}", spec.experiment());
    println!("spec hash  : {}", spec.content_hash());
    println!(
        "progress   : {percent:.1}% complete ({completed}/{} cells, {} pending)",
        cells.len(),
        cells.len() - completed
    );
    let dropped = if scan.skipped > 0 {
        format!(", {} lines dropped by truncation recovery", scan.skipped)
    } else {
        String::new()
    };
    println!(
        "journal    : {} ({} entries{dropped})",
        journal_path.display(),
        scan.entries
    );
    println!("last write : {}", last_write_age(&journal_path));
    // A fleet sidecar is only left behind by an in-flight or failed
    // `--procs N` run (clean completions remove it) — surface it.
    if let Some(fleet) =
        scan_fleet_sidecar(&fleet_sidecar_path(&journal_path)).map_err(|e| e.to_string())?
    {
        println!(
            "fleet      : {} leases outstanding, {} procs, {} worker restarts, {} cells failed",
            fleet.outstanding, fleet.procs, fleet.restarts, fleet.failed
        );
        for w in &fleet.workers {
            println!(
                "  slot {:<4} : {} {} ({} connects, {} reconnects)",
                w.slot,
                w.transport,
                w.peer,
                w.connects,
                w.reconnects()
            );
        }
    }
    Ok(())
}

/// Age of the journal's last durable write (its mtime) — the campaign's
/// "last heartbeat" from the outside.
fn last_write_age(path: &Path) -> String {
    let Ok(modified) = std::fs::metadata(path).and_then(|m| m.modified()) else {
        return "never (no journal yet)".to_string();
    };
    match modified.elapsed() {
        Ok(age) => {
            let secs = age.as_secs();
            if secs >= 3600 {
                format!("{}h {}m ago", secs / 3600, (secs % 3600) / 60)
            } else if secs >= 60 {
                format!("{}m {}s ago", secs / 60, secs % 60)
            } else {
                format!("{secs}s ago")
            }
        }
        Err(_) => "in the future (clock skew)".to_string(),
    }
}

/// `synran report` — deterministic renderings of telemetry and journal
/// artifacts (`synran::lab::Report`).
fn report_cmd(
    paths: &[String],
    values: &HashMap<String, String>,
    flags: &[String],
) -> Result<(), String> {
    // The `--key value` parser is greedy, so in `report --check a.jsonl`
    // the first path lands as the flag's value — reclaim it.
    let mut paths: Vec<&String> = paths.iter().collect();
    let mut check = flags.iter().any(|f| f == "check");
    if let Some(v) = values.get("check") {
        check = true;
        paths.insert(0, v);
    }
    if paths.is_empty() {
        return Err(
            "report expects at least one JSONL artifact (results/*.telemetry.jsonl or \
             results/*.journal.jsonl)"
                .into(),
        );
    }
    let mut report = Report::new();
    for path in &paths {
        report
            .load(Path::new(path.as_str()))
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if check {
        return match report.check() {
            Ok(text) => {
                print!("{text}");
                println!("check: ok");
                Ok(())
            }
            Err(text) => Err(format!("stream integrity check failed\n{text}")),
        };
    }
    let format = values.get("format").map_or(Ok(ReportFormat::Table), |v| {
        ReportFormat::parse(v).map_err(|e| e.to_string())
    })?;
    print!("{}", report.render(format));
    Ok(())
}

fn campaign_list(values: &HashMap<String, String>) -> Result<(), String> {
    let dir = values.get("dir").map_or("campaigns", String::as_str);
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("no campaign directory at {dir}/");
            return Ok(());
        }
        Err(e) => return Err(format!("{dir}: {e}")),
    };
    let mut specs: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "campaign"))
        .collect();
    specs.sort();
    if specs.is_empty() {
        println!("no .campaign specs under {dir}/");
        return Ok(());
    }
    for path in specs {
        match CampaignSpec::parse_file(&path)
            .and_then(|spec| Ok((presets::campaign_cells(&spec)?, spec)))
        {
            Ok((cells, spec)) => {
                let cache =
                    load_cache(&journal_path(values, spec.name())).map_err(|e| e.to_string())?;
                let cached = cells
                    .iter()
                    .filter(|c| cache.contains_key(&c.content_hash()))
                    .count();
                println!(
                    "{:<16} {:<6} {:>4} cells ({cached} cached)  {}",
                    spec.name(),
                    spec.experiment(),
                    cells.len(),
                    path.display()
                );
            }
            Err(e) => println!("{:<16} INVALID: {e}", path.display()),
        }
    }
    Ok(())
}

fn list() {
    println!("protocols : synran (the paper's §4 protocol, any t < n)");
    println!("            symmetric (SynRan minus the one-sided coin rule — E5's ablation)");
    println!("            flooding (deterministic t+1-round baseline)");
    println!("            leader (CMS-style random leader, t < n/2 — E9)");
    println!();
    println!("adversaries: passive, random, storm, oblivious (pre-committed schedule),");
    println!("            kill-ones, kill-zeros, balancer (Lemma 4.6 stalling),");
    println!("            lower-bound (Theorem 1, valency-guided), walker (§3.4 message walk),");
    println!("            hunter (leader-killing, E9)");
    println!();
    println!("experiments (in crates/bench): e1_coin_control e2_blowup e3_lower_bound");
    println!("            e4_synran_upper e5_protocol_comparison e6_large_deviation");
    println!("            e7_t_sweep e8_budget_ablation e9_adaptivity e10_threshold_ablation");
    println!("            → cargo run --release -p synran-bench --bin <name>");
    println!();
    println!("campaigns : declarative sweeps under campaigns/ (E3, E4, E7 shipped)");
    println!("            → synran campaign run campaigns/e3.campaign");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (positionals, values, flags) = parse(&args);
    let Some(cmd) = positionals.first().cloned() else {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    };
    if cmd == "list" {
        list();
        return ExitCode::SUCCESS;
    }
    if cmd == "campaign" {
        return match campaign_cmd(&positionals[1..], &values, &flags) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd == "report" {
        return match report_cmd(&positionals[1..], &values, &flags) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if cmd != "run" && cmd != "batch" {
        eprintln!("unknown command {cmd:?}\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    let opts = match Opts::from(&values, &flags) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match dispatch(&cmd, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts_from(args: &[&str]) -> Result<Opts, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let (_, values, flags) = parse(&owned);
        Opts::from(&values, &flags)
    }

    #[test]
    fn parse_splits_command_values_and_flags() {
        let args: Vec<String> = ["run", "--n", "16", "--trace", "--seed", "9"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (positionals, values, flags) = parse(&args);
        assert_eq!(positionals, vec!["run".to_string()]);
        assert_eq!(values.get("n").map(String::as_str), Some("16"));
        assert_eq!(values.get("seed").map(String::as_str), Some("9"));
        assert!(flags.contains(&"trace".to_string()));
    }

    #[test]
    fn parse_keeps_every_positional_in_order() {
        let args: Vec<String> = ["campaign", "run", "campaigns/e3.campaign", "--threads", "2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (positionals, values, _) = parse(&args);
        assert_eq!(
            positionals,
            vec!["campaign", "run", "campaigns/e3.campaign"]
        );
        assert_eq!(values.get("threads").map(String::as_str), Some("2"));
    }

    #[test]
    fn defaults_depend_on_protocol() {
        let o = opts_from(&["--n", "32"]).unwrap();
        assert_eq!(o.protocol, "synran");
        assert_eq!(o.t, 31, "default t = n − 1");
        assert_eq!(o.ones, 16);
        let o = opts_from(&["--protocol", "leader", "--n", "33"]).unwrap();
        assert_eq!(o.t, 16, "leader defaults to t = (n−1)/2");
    }

    #[test]
    fn bad_numbers_are_reported() {
        let err = opts_from(&["--n", "many"]).unwrap_err();
        assert!(err.contains("--n"), "{err}");
        let err = opts_from(&["--seed", "x"]).unwrap_err();
        assert!(err.contains("--seed"), "{err}");
    }

    #[test]
    fn inputs_and_config_reflect_options() {
        let o = opts_from(&["--n", "6", "--ones", "2", "--t", "3", "--trace"]).unwrap();
        let inputs = o.inputs();
        assert_eq!(inputs.iter().filter(|b| b.is_one()).count(), 2);
        assert_eq!(inputs.len(), 6);
        let cfg = o.config();
        assert_eq!(cfg.n(), 6);
        assert_eq!(cfg.t(), 3);
        assert!(cfg.trace_enabled());
    }

    #[test]
    fn telemetry_options_parse() {
        let o = opts_from(&["--n", "8"]).unwrap();
        assert_eq!(o.telemetry, TelemetryMode::Off);
        assert!(o.telemetry_out.is_none());
        let o = opts_from(&["--telemetry", "spans"]).unwrap();
        assert_eq!(o.telemetry, TelemetryMode::Spans);
        // An output path alone implies counters.
        let o = opts_from(&["--telemetry-out", "/tmp/t.jsonl"]).unwrap();
        assert_eq!(o.telemetry, TelemetryMode::Counters);
        assert_eq!(o.telemetry_out.as_deref(), Some("/tmp/t.jsonl"));
        // An explicit mode wins over the implied default.
        let o = opts_from(&["--telemetry", "off", "--telemetry-out", "x.jsonl"]).unwrap();
        assert_eq!(o.telemetry, TelemetryMode::Off);
        let err = opts_from(&["--telemetry", "verbose"]).unwrap_err();
        assert!(err.contains("--telemetry"), "{err}");
    }

    #[test]
    fn adversary_protocol_compatibility_is_enforced() {
        let o = opts_from(&["--adversary", "balancer"]).unwrap();
        assert!(synran_adversary_builds(&o));
        assert!(
            generic_adversary::<synran::core::LeaderProcess>("balancer", &o, 1).is_err(),
            "balancer must not attack generic protocols"
        );
        assert!(leader_adversary("hunter", &o, 1).is_ok());
        assert!(leader_adversary("walker", &o, 1).is_err());
    }

    fn synran_adversary_builds(o: &Opts) -> bool {
        synran_adversary(&o.adversary, o, 1).is_ok()
    }
}
