//! # synran — a reproduction of Bar-Joseph & Ben-Or (PODC 1998)
//!
//! *"A Tight Lower Bound for Randomized Synchronous Consensus"* proves
//! matching `Θ(t/√(n·log(2+t/√n)))` bounds on the expected round
//! complexity of randomized synchronous consensus against an adaptive,
//! full-information, fail-stop adversary. This workspace rebuilds the
//! whole system the paper reasons about:
//!
//! * [`sim`] — the synchronous full-information simulator (§3.1's model);
//! * [`coin`] — one-round collective coin-flipping games and their
//!   controllability (§2, Lemma 2.1 / Corollary 2.2);
//! * [`core`] — the `SynRan` protocol (§4), its symmetric-coin ablation,
//!   and the deterministic flooding baseline, plus consensus checking;
//! * [`adversary`] — the lower-bound machinery (§3): probabilistic
//!   valency, the valency-guided adversary, and structural attacks;
//! * [`analysis`] — statistics, exact binomial tails (Lemma 4.4), and the
//!   paper's bound curves;
//! * [`lab`] — the declarative campaign engine: scenario specs, sharded
//!   scheduling, resumable journals, and a content-keyed result cache
//!   (`synran campaign run campaigns/e3.campaign`).
//!
//! The umbrella crate re-exports everything; depend on it and use the
//! module paths below, or depend on the member crates directly.
//!
//! ## Quick start
//!
//! ```
//! use synran::core::{check_consensus, SynRan};
//! use synran::sim::{Bit, Passive, SimConfig};
//!
//! let n = 16;
//! let inputs: Vec<Bit> = (0..n).map(|i| Bit::from(i % 2 == 0)).collect();
//! let verdict = check_consensus(
//!     &SynRan::new(),
//!     &inputs,
//!     SimConfig::new(n).seed(7),
//!     &mut Passive,
//! )?;
//! assert!(verdict.is_correct());
//! println!("agreed in {} rounds", verdict.rounds());
//! # Ok::<(), synran::sim::SimError>(())
//! ```
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/bench/src/bin/` for the experiment harnesses (E1–E10) that
//! regenerate every quantitative claim in the paper.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use synran_adversary as adversary;
pub use synran_analysis as analysis;
pub use synran_coin as coin;
pub use synran_core as core;
pub use synran_lab as lab;
pub use synran_sim as sim;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use synran_adversary::{
        Balancer, BoundaryAttack, LeaderHunter, LowerBoundAdversary, MessageWalker, Oblivious,
        PreferenceKiller, RandomKiller, Storm,
    };
    pub use synran_core::{
        check_consensus, check_consensus_with, run_batch, run_batch_with, ConsensusProtocol,
        FloodingConsensus, InputAssignment, LeaderConsensus, LeaderProcess, SynRan,
    };
    pub use synran_sim::{
        Adversary, Bit, Intervention, Passive, ProcessId, Round, SimConfig, SimError, SimRng,
        Telemetry, TelemetryMode, World,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let cfg = SimConfig::new(4).seed(1);
        let protocol = SynRan::new();
        let inputs = [Bit::One; 4];
        let verdict = check_consensus(&protocol, &inputs, cfg, &mut Passive).unwrap();
        assert!(verdict.is_correct());
    }
}
