#!/usr/bin/env bash
# Perf-regression gate over the committed BENCH_*.json baselines.
#
#   ./scripts/bench_gate.sh --smoke    no fresh benchmark: self-compare the
#                                      committed baselines (must pass), then
#                                      compare against a synthetically
#                                      regressed copy (must fail) — proves
#                                      the gate has teeth without timing
#                                      flakiness (this is what tier1 runs)
#
# The fresh-run full mode moved to scripts/nightly.sh, which re-runs
# bench_parallel and bench_lab and gates them against their baselines.
#
# Tolerance comes from BENCH_GATE_MAX_REGRESS (percent, default 25): a
# time-like metric (any *_ms / *_ns) more than that far above its baseline
# fails the gate, as does a baseline `true` boolean (identical,
# reused_gt_spawned) turning false or a metric disappearing.
set -euo pipefail
cd "$(dirname "$0")/.."

max_regress="${BENCH_GATE_MAX_REGRESS:-25}"
gate="./target/release/bench_gate"
if [ ! -x "$gate" ]; then
    cargo build --release -q -p synran-bench --bin bench_gate
fi

scratch="$(mktemp -d /tmp/synran-bench-gate.XXXXXX)"
trap 'rm -rf "$scratch"' EXIT

if [ "${1:-}" = "--smoke" ]; then
    # Positive control: every committed baseline must pass against itself.
    for baseline in BENCH_*.json; do
        [ -e "$baseline" ] || { echo "no BENCH_*.json baselines found"; exit 1; }
        "$gate" compare "$baseline" "$baseline" --max-regress "$max_regress" >/dev/null \
            || { echo "gate smoke FAILED: $baseline does not pass against itself"; exit 1; }
    done
    # Negative control: a 1.5x-slower copy must fail.
    "$gate" scale BENCH_parallel.json "$scratch/regressed.json" 1.5 >/dev/null
    if "$gate" compare BENCH_parallel.json "$scratch/regressed.json" \
        --max-regress "$max_regress" >/dev/null 2>&1; then
        echo "gate smoke FAILED: synthetic 1.5x regression was not detected"
        exit 1
    fi
    echo "bench gate smoke OK: baselines self-pass, synthetic regression detected"
    exit 0
fi

echo "bench_gate.sh now only runs --smoke; the fresh-run mode moved to ./scripts/nightly.sh" >&2
exit 2
