#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, clippy with warnings
# denied, and the formatting check, stopping at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release --workspace

echo "== tier1: cargo test =="
cargo test -q --workspace

echo "== tier1: cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: cargo fmt --check =="
cargo fmt --all -- --check

echo "== tier1: telemetry smoke test =="
# A spans-mode CLI run must produce a parseable JSONL file containing at
# least one span and one counter event (the layer's end-to-end contract).
telemetry_out="$(mktemp /tmp/synran-telemetry.XXXXXX.jsonl)"
trap 'rm -f "$telemetry_out"' EXIT
./target/release/synran run --protocol synran --n 16 --seed 7 \
    --telemetry spans --telemetry-out "$telemetry_out" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$telemetry_out" <<'EOF'
import json, sys
events = [json.loads(line) for line in open(sys.argv[1])]
kinds = {e["type"] for e in events}
assert "span" in kinds, f"no span events in {kinds}"
assert "counter" in kinds, f"no counter events in {kinds}"
print(f"telemetry JSONL OK: {len(events)} events, kinds {sorted(kinds)}")
EOF
else
    grep -q '"type":"span"' "$telemetry_out" || { echo "no span events"; exit 1; }
    grep -q '"type":"counter"' "$telemetry_out" || { echo "no counter events"; exit 1; }
    echo "telemetry JSONL OK: $(wc -l < "$telemetry_out") events (grep check)"
fi

echo "== tier1: report smoke test =="
# `synran report --check` must accept the artifact the previous step just
# produced (exit 0), render a non-empty folded stack file from it, and
# reject a truncated copy (exit nonzero) — the observability layer's
# end-to-end contract.
./target/release/synran report --check "$telemetry_out" >/dev/null \
    || { echo "report --check rejected a healthy artifact"; exit 1; }
folded_lines="$(./target/release/synran report --format folded "$telemetry_out" | wc -l)"
[ "$folded_lines" -gt 0 ] || { echo "report produced an empty folded stack"; exit 1; }
head -c -20 "$telemetry_out" > "$telemetry_out.cut"
if ./target/release/synran report --check "$telemetry_out.cut" >/dev/null 2>&1; then
    echo "report --check accepted a truncated artifact"
    rm -f "$telemetry_out.cut"
    exit 1
fi
rm -f "$telemetry_out.cut"
echo "report smoke OK: healthy artifact passes --check ($folded_lines folded stacks), truncated copy rejected"

echo "== tier1: bench gate smoke test =="
# The perf-regression gate must pass every committed BENCH_*.json baseline
# against itself and detect a synthetic 1.5x slowdown (see
# scripts/bench_gate.sh for the full fresh-run mode).
./scripts/bench_gate.sh --smoke

echo "== tier1: bit-plane delivery smoke test =="
# The plane fast path must beat the scalar pair path and stay
# byte-identical to the scalarized oracle at threads 1, 2, and 8 (the
# binary asserts both and exits non-zero on divergence).
plane_out="$(mktemp /tmp/synran-bench-plane.XXXXXX.json)"
trap 'rm -f "$telemetry_out" "$plane_out"' EXIT
./target/release/bench_plane --smoke --out "$plane_out" >/dev/null
grep -q '"identical": true' "$plane_out" \
    || { echo "plane/scalar differential failed"; exit 1; }
echo "bit-plane smoke OK: plane path identical to scalar oracle"

echo "== tier1: worker-pool parallel smoke test =="
# The persistent-pool fan-out must stay byte-identical to serial at
# threads 1, 2, and 8 on every row (valency estimation, seed batches,
# tiny batches), and the pool must re-use helpers rather than spawn per
# call (the binary asserts both and exits non-zero on violation). Run in
# a scratch dir so the smoke artifacts never clobber the repo baselines.
pool_dir="$(mktemp -d /tmp/synran-bench-parallel.XXXXXX)"
trap 'rm -f "$telemetry_out" "$plane_out"; rm -rf "$pool_dir"' EXIT
(cd "$pool_dir" && "$OLDPWD/target/release/bench_parallel" --smoke --out pool.json >/dev/null)
rows="$(grep -c '"group"' "$pool_dir/pool.json")"
matches="$(grep -c '"identical": true' "$pool_dir/pool.json")"
[ "$rows" -gt 0 ] && [ "$rows" -eq "$matches" ] \
    || { echo "worker-pool differential failed: $matches/$rows rows identical"; exit 1; }
grep -q '"reused_gt_spawned": true' "$pool_dir/pool.json" \
    || { echo "pool did not re-use threads across batches"; exit 1; }
echo "worker-pool smoke OK: $rows/$rows rows identical at threads {1,2,8}, pool re-used"

echo "== tier1: cohort valency smoke test =="
# The lockstep cohort engine behind estimate_valency must stay
# byte-identical to the per-fork reference path at threads 1, 2, and 8 on
# every row, and must observe early retirement on the counters pass (the
# binary asserts both and exits non-zero on divergence). Run in a scratch
# dir so the smoke artifact never clobbers the committed BENCH_valency.json.
cohort_dir="$(mktemp -d /tmp/synran-bench-valency.XXXXXX)"
trap 'rm -f "$telemetry_out" "$plane_out"; rm -rf "$pool_dir" "$cohort_dir"' EXIT
(cd "$cohort_dir" && "$OLDPWD/target/release/bench_valency" --smoke --out valency.json >/dev/null)
vrows="$(grep -c '"group"' "$cohort_dir/valency.json")"
vmatches="$(grep -c '"identical": true' "$cohort_dir/valency.json")"
[ "$vrows" -gt 0 ] && [ "$vrows" -eq "$vmatches" ] \
    || { echo "cohort differential failed: $vmatches/$vrows rows identical"; exit 1; }
grep -q '"retirement_observed": true' "$cohort_dir/valency.json" \
    || { echo "cohort never retired a world early"; exit 1; }
echo "cohort smoke OK: $vrows/$vrows rows identical to the per-fork path at threads {1,2,8}"

echo "== tier1: campaign smoke test =="
# End-to-end contract of the campaign engine: run a small grid campaign,
# simulate a crash by truncating the journal mid-file, resume at a
# different thread count, and require byte-identical rendered output.
campaign_dir="$(mktemp -d /tmp/synran-campaign.XXXXXX)"
trap 'rm -f "$telemetry_out" "$plane_out"; rm -rf "$pool_dir" "$cohort_dir" "$campaign_dir"' EXIT
cat > "$campaign_dir/smoke.campaign" <<'EOF'
campaign  = smoke
adversary = balancer
runs      = 3
seed      = 5
sweep n   = 8,10
sweep t   = half,max
EOF
(cd "$campaign_dir" && "$OLDPWD/target/release/synran" campaign run smoke.campaign \
    --threads 1 > serial.txt 2>/dev/null)
journal="$campaign_dir/results/smoke.journal.jsonl"
[ -s "$journal" ] || { echo "campaign journal missing"; exit 1; }
# Keep the header plus two cell lines, cutting the last kept line in half
# (a kill mid-append), then resume on all cores.
head -n 3 "$journal" | head -c -40 > "$journal.cut" && mv "$journal.cut" "$journal"
(cd "$campaign_dir" && "$OLDPWD/target/release/synran" campaign resume smoke.campaign \
    --threads 0 > resumed.txt 2>/dev/null)
diff "$campaign_dir/serial.txt" "$campaign_dir/resumed.txt" \
    || { echo "resumed campaign output diverged"; exit 1; }
# Capture status rather than piping it: grep -q closes the pipe early,
# which under pipefail turns the writer's SIGPIPE into a failure.
status_out="$("./target/release/synran" campaign status "$campaign_dir/smoke.campaign" \
    --results-dir "$campaign_dir/results")"
grep -q "0 pending" <<< "$status_out" \
    || { echo "campaign status shows pending cells after resume"; exit 1; }
echo "campaign resume OK: serial and resumed output byte-identical"

echo "== tier1: fleet smoke test =="
# End-to-end contract of the multi-process fleet: `--procs 2` must produce
# the same stdout and a byte-identical journal as the in-process engine —
# including under an injected worker panic — and a kill -9'd supervisor
# must resume to the same rendered output with every cell journalled.
fleet_dir="$(mktemp -d /tmp/synran-fleet.XXXXXX)"
trap 'rm -f "$telemetry_out" "$plane_out"; rm -rf "$pool_dir" "$cohort_dir" "$campaign_dir" "$fleet_dir"' EXIT
cat > "$fleet_dir/fsmoke.campaign" <<'EOF'
campaign  = fsmoke
adversary = balancer
runs      = 3
seed      = 5
sweep n   = 8,10,12,14
sweep t   = half,max
EOF
synran_bin="$OLDPWD/target/release/synran"
(cd "$fleet_dir" && "$synran_bin" campaign run fsmoke.campaign \
    --results-dir serial > serial.txt 2>/dev/null)
# Parity under an injected worker panic: the worker running cell 1 dies,
# the supervisor re-leases, and nothing observable changes.
(cd "$fleet_dir" && SYNRAN_FLEET_FAULT=panic:cell=1 "$synran_bin" campaign run \
    fsmoke.campaign --procs 2 --results-dir fleet > fleet.txt 2>/dev/null)
diff "$fleet_dir/serial.txt" "$fleet_dir/fleet.txt" \
    || { echo "fleet stdout diverged from the engine"; exit 1; }
cmp "$fleet_dir/serial/fsmoke.journal.jsonl" "$fleet_dir/fleet/fsmoke.journal.jsonl" \
    || { echo "fleet journal diverged from the engine"; exit 1; }
[ ! -e "$fleet_dir/fleet/fsmoke.fleet.jsonl" ] \
    || { echo "fleet sidecar survived a clean run"; exit 1; }
# Crash-resume: kill -9 the supervisor mid-campaign, then resume with the
# fleet again. The resumed output must match serial byte-for-byte and the
# journal must end up with the same cell lines.
(cd "$fleet_dir" && exec "$synran_bin" campaign run fsmoke.campaign --procs 2 \
    --results-dir crash > crash.txt 2>/dev/null) &
supervisor_pid=$!
sleep 0.2
kill -9 "$supervisor_pid" 2>/dev/null || true
wait "$supervisor_pid" 2>/dev/null || true
pkill -9 -f "$synran_bin campaign worker" 2>/dev/null || true
(cd "$fleet_dir" && "$synran_bin" campaign resume fsmoke.campaign --procs 2 \
    --results-dir crash > resumed.txt 2>/dev/null)
diff "$fleet_dir/serial.txt" "$fleet_dir/resumed.txt" \
    || { echo "fleet crash-resume output diverged"; exit 1; }
# The crash journal may carry a second header and (at worst) duplicate
# cell lines from a kill between append and resume bookkeeping, but its
# *set* of cell lines must equal the serial journal's.
diff <(grep '"type":"cell"' "$fleet_dir/serial/fsmoke.journal.jsonl" | sort -u) \
     <(grep '"type":"cell"' "$fleet_dir/crash/fsmoke.journal.jsonl" | sort -u) \
    || { echo "fleet crash-resume journal cell lines diverged"; exit 1; }
status_out="$("$synran_bin" campaign status "$fleet_dir/fsmoke.campaign" \
    --results-dir "$fleet_dir/crash")"
grep -q "0 pending" <<< "$status_out" \
    || { echo "campaign status shows pending cells after fleet resume"; exit 1; }
echo "fleet smoke OK: --procs 2 byte-identical (incl. injected panic), kill -9 resume converges"

echo "== tier1: fleet TCP smoke test =="
# The network transport must be invisible: a campaign served by a
# loopback `campaign agent` (mixed with one local pipe slot) must be
# byte-identical to the in-process engine, and an agent that severs its
# connection mid-cell must be reconnected and converge to the same
# output. Reuses the fleet smoke's spec and serial baseline.
SYNRAN_FLEET_TOKEN=tier1-secret "$synran_bin" campaign agent \
    --listen 127.0.0.1:0 --port-file "$fleet_dir/agent.port" 2>/dev/null &
agent_pid=$!
SYNRAN_FLEET_TOKEN=tier1-secret SYNRAN_FLEET_FAULT=drop_conn "$synran_bin" campaign agent \
    --listen 127.0.0.1:0 --port-file "$fleet_dir/agent2.port" 2>/dev/null &
drop_agent_pid=$!
trap 'kill "$agent_pid" "$drop_agent_pid" 2>/dev/null || true; rm -f "$telemetry_out" "$plane_out"; rm -rf "$pool_dir" "$cohort_dir" "$campaign_dir" "$fleet_dir"' EXIT
for _ in $(seq 1 100); do
    [ -s "$fleet_dir/agent.port" ] && [ -s "$fleet_dir/agent2.port" ] && break
    sleep 0.1
done
[ -s "$fleet_dir/agent.port" ] && [ -s "$fleet_dir/agent2.port" ] \
    || { echo "campaign agent never wrote its port file"; exit 1; }
agent_addr="$(cat "$fleet_dir/agent.port")"
drop_agent_addr="$(cat "$fleet_dir/agent2.port")"
(cd "$fleet_dir" && "$synran_bin" campaign run fsmoke.campaign \
    --workers "$agent_addr,local:1" --token tier1-secret \
    --results-dir tcp > tcp.txt 2>/dev/null)
diff "$fleet_dir/serial.txt" "$fleet_dir/tcp.txt" \
    || { echo "TCP fleet stdout diverged from the engine"; exit 1; }
cmp "$fleet_dir/serial/fsmoke.journal.jsonl" "$fleet_dir/tcp/fsmoke.journal.jsonl" \
    || { echo "TCP fleet journal diverged from the engine"; exit 1; }
[ ! -e "$fleet_dir/tcp/fsmoke.fleet.jsonl" ] \
    || { echo "TCP fleet sidecar survived a clean run"; exit 1; }
# Dropped connection mid-cell: the faulted agent severs its socket on the
# first lease of cell 0 (attempt 0 only); the supervisor's backoff
# reconnect must find the same agent and retry to identical output.
(cd "$fleet_dir" && SYNRAN_FLEET_BACKOFF_MS=50 "$synran_bin" campaign run fsmoke.campaign \
    --workers "$drop_agent_addr" --token tier1-secret \
    --results-dir tcpdrop > tcpdrop.txt 2>/dev/null)
diff "$fleet_dir/serial.txt" "$fleet_dir/tcpdrop.txt" \
    || { echo "TCP drop_conn re-run output diverged"; exit 1; }
cmp "$fleet_dir/serial/fsmoke.journal.jsonl" "$fleet_dir/tcpdrop/fsmoke.journal.jsonl" \
    || { echo "TCP drop_conn re-run journal diverged"; exit 1; }
echo "fleet TCP smoke OK: loopback agent byte-identical (mixed remote+local), drop_conn reconnect converges"

echo "== tier1: OK =="
