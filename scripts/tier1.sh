#!/usr/bin/env bash
# Tier-1 gate: everything a PR must pass before merging.
#
#   ./scripts/tier1.sh
#
# Runs the release build, the full test suite, clippy with warnings
# denied, and the formatting check, stopping at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release =="
cargo build --release --workspace

echo "== tier1: cargo test =="
cargo test -q --workspace

echo "== tier1: cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier1: cargo fmt --check =="
cargo fmt --all -- --check

echo "== tier1: OK =="
