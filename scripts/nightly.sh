#!/usr/bin/env bash
# Nightly perf gate: fresh benchmark runs compared against the committed
# BENCH_*.json baselines. This is the fresh-run mode that used to live in
# bench_gate.sh — it takes minutes, so tier-1 runs only the timing-free
# `bench_gate.sh --smoke` and CI schedules this script nightly instead.
#
#   ./scripts/nightly.sh
#
# Tolerance comes from BENCH_GATE_MAX_REGRESS (percent, default 25), the
# same knob bench_gate.sh uses.
set -euo pipefail
cd "$(dirname "$0")/.."

max_regress="${BENCH_GATE_MAX_REGRESS:-25}"

echo "== nightly: cargo build --release =="
cargo build --release --workspace

gate="./target/release/bench_gate"
scratch="$(mktemp -d /tmp/synran-nightly.XXXXXX)"
trap 'rm -rf "$scratch"' EXIT

echo "== nightly: fresh bench_parallel vs BENCH_parallel.json =="
# Run fresh benches in a scratch dir so their artifacts never clobber the
# committed baselines; keep the baseline's row geometry (no --smoke —
# smoke shrinks n, which would register as missing metrics).
(cd "$scratch" && "$OLDPWD/target/release/bench_parallel" --out fresh_parallel.json >/dev/null)
"$gate" compare BENCH_parallel.json "$scratch/fresh_parallel.json" --max-regress "$max_regress" \
    || { echo "nightly gate FAILED against BENCH_parallel.json"; exit 1; }

echo "== nightly: fresh bench_valency vs BENCH_valency.json =="
# The cohort-vs-fork differential re-asserts byte-identity on every fresh
# run; the gate then checks the fork_ms/cohort_ms timings against the
# committed baseline.
(cd "$scratch" && "$OLDPWD/target/release/bench_valency" --out fresh_valency.json >/dev/null)
"$gate" compare BENCH_valency.json "$scratch/fresh_valency.json" --max-regress "$max_regress" \
    || { echo "nightly gate FAILED against BENCH_valency.json"; exit 1; }

echo "== nightly: fresh bench_lab vs BENCH_lab.json =="
# bench_lab resolves the sibling synran binary for its fleet_procs_* rows,
# so the workspace build above is a prerequisite, not an optimisation.
(cd "$scratch" && "$OLDPWD/target/release/bench_lab" --out fresh_lab.json >/dev/null)
"$gate" compare BENCH_lab.json "$scratch/fresh_lab.json" --max-regress "$max_regress" \
    || { echo "nightly gate FAILED against BENCH_lab.json"; exit 1; }

echo "== nightly: fleet TCP parity =="
# Fresh loopback check that the network transport stays invisible: a
# campaign served entirely by a TCP agent must render byte-identically
# to the in-process engine (stdout and journal both).
cat > "$scratch/ntcp.campaign" <<'EOF'
campaign  = ntcp
adversary = balancer
runs      = 3
seed      = 9
sweep n   = 8,10,12
sweep t   = half,max
EOF
./target/release/synran campaign agent --listen 127.0.0.1:0 \
    --token nightly-secret --port-file "$scratch/agent.port" 2>/dev/null &
agent_pid=$!
trap 'kill "$agent_pid" 2>/dev/null || true; rm -rf "$scratch"' EXIT
for _ in $(seq 1 100); do [ -s "$scratch/agent.port" ] && break; sleep 0.1; done
[ -s "$scratch/agent.port" ] || { echo "campaign agent never bound"; exit 1; }
agent_addr="$(cat "$scratch/agent.port")"
(cd "$scratch" && "$OLDPWD/target/release/synran" campaign run ntcp.campaign \
    --results-dir serial > serial.txt 2>/dev/null)
(cd "$scratch" && "$OLDPWD/target/release/synran" campaign run ntcp.campaign \
    --workers "$agent_addr" --token nightly-secret \
    --results-dir tcp > tcp.txt 2>/dev/null)
diff "$scratch/serial.txt" "$scratch/tcp.txt" \
    || { echo "nightly TCP stdout diverged from the engine"; exit 1; }
cmp "$scratch/serial/ntcp.journal.jsonl" "$scratch/tcp/ntcp.journal.jsonl" \
    || { echo "nightly TCP journal diverged from the engine"; exit 1; }
echo "nightly TCP parity OK: loopback agent byte-identical to the engine"

echo "== nightly: OK (max regress ${max_regress}%) =="
